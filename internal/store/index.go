package store

import "sort"

// ids is a sorted set of TermIDs stored as a slice; small and
// cache-friendly for the posting lists a UGC platform produces.
type ids []TermID

func (s ids) search(v TermID) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= v })
}

func (s ids) has(v TermID) bool {
	i := s.search(v)
	return i < len(s) && s[i] == v
}

func (s ids) insert(v TermID) (ids, bool) {
	i := s.search(v)
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

func (s ids) remove(v TermID) (ids, bool) {
	i := s.search(v)
	if i >= len(s) || s[i] != v {
		return s, false
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}

// bpair is one (second id → sorted third-id set) entry of a pairSet.
type bpair struct {
	b   TermID
	set ids
}

// pairSetCutover is the vector→map upgrade threshold. Subjects carry
// a handful of predicates and objects a handful of subjects, so the
// overwhelming share of pairSets never leaves the vector; the hot
// leading ids (a popular predicate's object table) upgrade to a map.
const pairSetCutover = 16

// pairSet maps a second id to the sorted set of third ids for one
// leading id. Small fan-outs — the common case by far — live in a
// sorted vector (no per-node map allocation, binary search instead of
// hashing); past pairSetCutover entries it upgrades to a map. arr is
// the vector's initial backing, so one- and two-entry nodes (most of
// OSP, where an object typically names a single subject) cost no
// allocation beyond the node itself.
type pairSet struct {
	vec []bpair        // sorted by b; used while m == nil
	m   map[TermID]ids // non-nil once upgraded
	arr [2]bpair
}

func (ps *pairSet) find(b TermID) int {
	lo, hi := 0, len(ps.vec)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps.vec[mid].b < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// get returns the set for b (nil when absent).
func (ps *pairSet) get(b TermID) ids {
	if ps == nil {
		return nil
	}
	if ps.m != nil {
		return ps.m[b]
	}
	i := ps.find(b)
	if i < len(ps.vec) && ps.vec[i].b == b {
		return ps.vec[i].set
	}
	return nil
}

// add inserts c into b's set, allocating fresh one-element sets from
// g's slab.
func (ps *pairSet) add(b, c TermID, g *graphIndex) bool {
	if ps.m != nil {
		set, changed := ps.m[b].insert(c)
		if changed {
			ps.m[b] = set
		}
		return changed
	}
	i := ps.find(b)
	if i < len(ps.vec) && ps.vec[i].b == b {
		set, changed := ps.vec[i].set.insert(c)
		if changed {
			ps.vec[i].set = set
		}
		return changed
	}
	if len(ps.vec) >= pairSetCutover {
		ps.m = make(map[TermID]ids, len(ps.vec)+1)
		for _, e := range ps.vec {
			ps.m[e.b] = e.set
		}
		ps.vec = nil
		ps.m[b] = g.alloc1(c)
		return true
	}
	ps.vec = append(ps.vec, bpair{})
	copy(ps.vec[i+1:], ps.vec[i:])
	ps.vec[i] = bpair{b: b, set: g.alloc1(c)}
	return true
}

func (ps *pairSet) del(b, c TermID) bool {
	if ps.m != nil {
		set, changed := ps.m[b].remove(c)
		if !changed {
			return false
		}
		if len(set) == 0 {
			delete(ps.m, b)
		} else {
			ps.m[b] = set
		}
		return true
	}
	i := ps.find(b)
	if i >= len(ps.vec) || ps.vec[i].b != b {
		return false
	}
	set, changed := ps.vec[i].set.remove(c)
	if !changed {
		return false
	}
	if len(set) == 0 {
		copy(ps.vec[i:], ps.vec[i+1:])
		ps.vec = ps.vec[:len(ps.vec)-1]
	} else {
		ps.vec[i].set = set
	}
	return true
}

func (ps *pairSet) empty() bool {
	if ps == nil {
		return true
	}
	if ps.m != nil {
		return len(ps.m) == 0
	}
	return len(ps.vec) == 0
}

// each calls fn for every (b, set) pair until fn returns false. Vector
// nodes iterate in ascending b order; upgraded nodes in map order.
func (ps *pairSet) each(fn func(b TermID, set ids) bool) bool {
	if ps == nil {
		return true
	}
	if ps.m != nil {
		for b, set := range ps.m {
			if !fn(b, set) {
				return false
			}
		}
		return true
	}
	for _, e := range ps.vec {
		if !fn(e.b, e.set) {
			return false
		}
	}
	return true
}

// keys appends every b id to dst (sorted for vector nodes, map order
// otherwise) and returns it; used by callers that sort anyway.
func (ps *pairSet) keys(dst []TermID) []TermID {
	if ps == nil {
		return dst
	}
	if ps.m != nil {
		for b := range ps.m {
			dst = append(dst, b)
		}
		return dst
	}
	for _, e := range ps.vec {
		dst = append(dst, e.b)
	}
	return dst
}

// size returns the total number of third ids across all pairs.
func (ps *pairSet) size() int {
	n := 0
	if ps == nil {
		return 0
	}
	if ps.m != nil {
		for _, set := range ps.m {
			n += len(set)
		}
		return n
	}
	for _, e := range ps.vec {
		n += len(e.set)
	}
	return n
}

// pairIndex maps a leading id to its pairSet: one permutation of the
// triple. With three instances (SPO, POS, OSP) every triple pattern
// resolves with at most one map walk.
type pairIndex map[TermID]*pairSet

// node returns the pairSet for leading id a, creating it (from g's
// node slab) when absent. Nodes are stable pointers for the life of
// the leading id (del drops the map entry only once the node is empty,
// and adds never replace it), which is what lets callers memoize them
// across a batch.
func (ix pairIndex) node(a TermID, g *graphIndex) *pairSet {
	ps := ix[a]
	if ps == nil {
		ps = g.newNode()
		ix[a] = ps
	}
	return ps
}

func (ix pairIndex) del(a, b, c TermID) bool {
	ps := ix[a]
	if ps == nil || !ps.del(b, c) {
		return false
	}
	if ps.empty() {
		delete(ix, a)
	}
	return true
}

// get returns the third-id set for (a, b), nil when absent.
func (ix pairIndex) get(a, b TermID) ids {
	return ix[a].get(b)
}

// nodeMemo is a small FIFO ring of recently resolved pairIndex nodes,
// used by the bulk loader to skip the leading-key map probe for ids
// that recur across a batch (a handful of predicates, popular
// objects). Valid only across adds under one lock hold: del can
// retire a node, after which a cached pointer would be stale.
type nodeMemo struct {
	keys    [termMemoSize]TermID
	nodes   [termMemoSize]*pairSet
	n, next int
}

func (m *nodeMemo) reset() { m.n, m.next = 0, 0 }

// get returns the (created-if-absent) node for k in ix, memoized.
func (m *nodeMemo) get(ix pairIndex, g *graphIndex, k TermID) *pairSet {
	for i := 0; i < m.n; i++ {
		if m.keys[i] == k {
			return m.nodes[i]
		}
	}
	ps := ix.node(k, g)
	m.keys[m.next], m.nodes[m.next] = k, ps
	m.next = (m.next + 1) % termMemoSize
	if m.n < termMemoSize {
		m.n++
	}
	return ps
}

// graphIndex holds the three permutation indexes for one named graph.
type graphIndex struct {
	spo  pairIndex
	pos  pairIndex
	osp  pairIndex
	size int
	// slab carves one-element sets for pairSet.add, and nodes carves
	// pairSet structs for pairIndex.node, batching what would otherwise
	// be one tiny heap allocation per fresh (a, b) pair or leading id.
	// The full-cap reslice in alloc1 keeps carved sets copy-on-append.
	slab  ids
	nodes []pairSet
}

// alloc1 returns a one-element set holding c.
func (g *graphIndex) alloc1(c TermID) ids {
	if len(g.slab) == 0 {
		g.slab = make(ids, 512)
	}
	s := g.slab[0:1:1]
	s[0] = c
	g.slab = g.slab[1:]
	return s
}

// newNode carves a fresh pairSet from the node slab. Handed-out
// pointers stay valid: reslicing doesn't move the backing array.
func (g *graphIndex) newNode() *pairSet {
	if len(g.nodes) == 0 {
		g.nodes = make([]pairSet, 256)
	}
	ps := &g.nodes[0]
	g.nodes = g.nodes[1:]
	ps.vec = ps.arr[:0]
	return ps
}

func newGraphIndex() *graphIndex {
	return &graphIndex{
		spo: make(pairIndex),
		pos: make(pairIndex),
		osp: make(pairIndex),
	}
}

func (g *graphIndex) add(s, p, o TermID) bool {
	return g.addNodes(g.spo.node(s, g), g.pos.node(p, g), g.osp.node(o, g), s, p, o)
}

// addNodes is add with all three leading-key nodes already resolved:
// bulk ingest sorts batches by subject and memoizes the probes, so
// the (large) leading maps are hashed once per run instead of once
// per quad.
func (g *graphIndex) addNodes(spoN, posN, ospN *pairSet, s, p, o TermID) bool {
	if !spoN.add(p, o, g) {
		return false
	}
	posN.add(o, s, g)
	ospN.add(s, p, g)
	g.size++
	return true
}

func (g *graphIndex) del(s, p, o TermID) bool {
	if !g.spo.del(s, p, o) {
		return false
	}
	g.pos.del(p, o, s)
	g.osp.del(o, s, p)
	g.size--
	return true
}

func (g *graphIndex) has(s, p, o TermID) bool {
	return g.spo.get(s, p).has(o)
}

// scan calls fn for every triple matching the pattern, where id 0 in a
// position is a wildcard. It picks the most selective permutation.
// fn returning false stops the scan.
func (g *graphIndex) scan(s, p, o TermID, fn func(s, p, o TermID) bool) bool {
	switch {
	case s != 0 && p != 0 && o != 0:
		if g.has(s, p, o) {
			return fn(s, p, o)
		}
		return true
	case s != 0 && p != 0:
		for _, oo := range g.spo.get(s, p) {
			if !fn(s, p, oo) {
				return false
			}
		}
		return true
	case s != 0 && o != 0:
		for _, pp := range g.osp.get(o, s) {
			if !fn(s, pp, o) {
				return false
			}
		}
		return true
	case p != 0 && o != 0:
		for _, ss := range g.pos.get(p, o) {
			if !fn(ss, p, o) {
				return false
			}
		}
		return true
	case s != 0:
		return g.spo[s].each(func(pp TermID, os ids) bool {
			for _, oo := range os {
				if !fn(s, pp, oo) {
					return false
				}
			}
			return true
		})
	case p != 0:
		return g.pos[p].each(func(oo TermID, ss ids) bool {
			for _, s2 := range ss {
				if !fn(s2, p, oo) {
					return false
				}
			}
			return true
		})
	case o != 0:
		return g.osp[o].each(func(ss TermID, ps ids) bool {
			for _, pp := range ps {
				if !fn(ss, pp, o) {
					return false
				}
			}
			return true
		})
	default:
		for ss, pm := range g.spo {
			if !pm.each(func(pp TermID, os ids) bool {
				for _, oo := range os {
					if !fn(ss, pp, oo) {
						return false
					}
				}
				return true
			}) {
				return false
			}
		}
		return true
	}
}

// count estimates the number of triples matching the pattern without
// enumerating them fully (exact for all bound/unbound combinations).
func (g *graphIndex) count(s, p, o TermID) int {
	switch {
	case s != 0 && p != 0 && o != 0:
		if g.has(s, p, o) {
			return 1
		}
		return 0
	case s != 0 && p != 0:
		return len(g.spo.get(s, p))
	case p != 0 && o != 0:
		return len(g.pos.get(p, o))
	case s != 0 && o != 0:
		return len(g.osp.get(o, s))
	case s != 0:
		return g.spo[s].size()
	case p != 0:
		return g.pos[p].size()
	case o != 0:
		return g.osp[o].size()
	default:
		return g.size
	}
}
