package store

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"lodify/internal/geo"
	"lodify/internal/obs"
	"lodify/internal/rdf"
)

// Sharding (DESIGN.md §14): the store is partitioned into a power-of-
// two number of shards keyed by a hash of the (graph, subject) id pair
// — the same pair the BulkLoader already sorts batches on. Each shard
// owns its own lock, graph indexes, and text/geo segments, so writers
// on different shards proceed in parallel and a writer stalls only the
// readers of its own shard. The term dictionary stays global (interning
// must assign one id per term, and ids must match the single-lock
// store byte-for-byte for dump identity); it is mostly-read and has
// its own finer lock.
//
// Routing is a pure function of the (g, s) ids: every quad of one
// subject within one graph lands in one shard, which keeps the
// per-graph permutation indexes intact per shard and makes point
// lookups (Has, bound-subject scans) single-shard operations.

// maxShards bounds the shard count; it also lets writer shard sets be
// tracked as a uint64 bitmask.
const maxShards = 64

// defaultShardsOverride holds the operator-set shard count for New()
// (0 = automatic: GOMAXPROCS rounded up to a power of two).
var defaultShardsOverride atomic.Int32

// SetDefaultShards fixes the shard count used by New() for stores
// created afterwards — the cmd/lodify -shards flag. n <= 0 restores
// the automatic default; 1 selects the legacy single-lock layout.
func SetDefaultShards(n int) {
	if n < 0 {
		n = 0
	}
	defaultShardsOverride.Store(int32(n))
}

// DefaultShards returns the shard count New() would use right now.
func DefaultShards() int {
	if n := int(defaultShardsOverride.Load()); n > 0 {
		return normalizeShards(n)
	}
	return normalizeShards(runtime.GOMAXPROCS(0))
}

// normalizeShards rounds n up to a power of two in [1, maxShards] so
// shard routing is a mask, not a modulo.
func normalizeShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shard is one partition of the quad store: the graph indexes and the
// text/geo segments for every (graph, subject) pair routed here, all
// guarded by the shard lock. The global Store.mu (multi-shard writer
// coordination) nests outside sh.mu; the dictionary lock nests inside.
type shard struct {
	mu     sync.RWMutex
	graphs map[TermID]*graphIndex
	// gids mirrors the keys of graphs as a sorted slice, maintained
	// incrementally under the write lock (see Store.mergedGidsLocked).
	gids ids
	size int
	// epoch is the global store epoch as of this shard's last mutation;
	// written under sh.mu, read by ShardStats and the epoch gauges.
	epoch uint64

	// pstats holds the planner statistics for every (graph, predicate)
	// pair routed here (pstats.go); mutated under sh.mu by the same
	// paths that mutate the graph indexes.
	pstats map[gpKey]*predStat

	text *textIndex
	geo  *geo.Index

	// leaseWait records this shard's contribution to cross-shard lease
	// acquisition waits (lodify_store_shard_lease_wait_seconds{shard=i});
	// resolved once per shard, observed only on contended acquisitions.
	leaseWait *obs.Histogram
}

func newShard(i int) *shard {
	return &shard{
		graphs:    make(map[TermID]*graphIndex),
		pstats:    make(map[gpKey]*predStat),
		text:      newTextIndex(),
		geo:       geo.NewIndex(0.5),
		leaseWait: obs.H("lodify_store_shard_lease_wait_seconds", "shard", strconv.Itoa(i)),
	}
}

// indexSecondary keeps the shard's full-text and geo segments in sync
// with a quad mutation. Caller holds sh.mu.
func (sh *shard) indexSecondary(q rdf.Quad, s, o TermID, add bool) {
	if q.O.IsLiteral() {
		if add {
			sh.text.index(o, s, q.O.Value())
		} else {
			sh.text.unindex(o, s, q.O.Value())
		}
		if q.P.Value() == rdf.GeoGeometry {
			if pt, err := geo.ParseWKT(q.O.Value()); err == nil {
				if add {
					sh.geo.Insert(uint64(s), pt)
				} else {
					sh.geo.Remove(uint64(s))
				}
			}
		}
	}
}

// shardIndex routes a (graph, subject) id pair to its shard. The ids
// are dense dictionary counters, so they are mixed (splitmix64 finisher)
// before masking; the route is deterministic per store, which DumpNQuads
// relies on to find each subject's owning shard during the merge.
func (st *Store) shardIndex(g, s TermID) int {
	if st.mask == 0 {
		return 0
	}
	x := uint64(g)<<32 ^ uint64(s)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & st.mask)
}

// ShardOf reports which shard stores quads of subject s in graph g.
// Both arguments are dictionary ids — like MatchIDs, it must never be
// fed query-local ids (the localid analyzer enforces this).
func (st *Store) ShardOf(g, s TermID) int { return st.shardIndex(g, s) }

// NumShards returns the store's shard count (1 = legacy single-lock
// layout).
func (st *Store) NumShards() int { return len(st.shards) }

// Epoch returns the store's current write epoch: it advances by one
// for every committed mutation batch (Add, Remove, Txn.Commit, bulk
// batch per shard) and is frozen while any ReadLease is held.
func (st *Store) Epoch() uint64 { return st.epoch.Load() }

// lockAllR acquires every shard's read lock in ascending shard order.
// The fixed order is what makes cross-shard snapshots deadlock-free:
// all full-store readers and the multi-shard writer path (Txn.Commit)
// acquire shard locks ascending, so no cycle can form through Go's
// writer-preferring RWMutex.
func (st *Store) lockAllR() {
	for _, sh := range st.shards {
		sh.mu.RLock()
	}
}

// unlockAllR releases what lockAllR acquired, in reverse order.
func (st *Store) unlockAllR() {
	for i := len(st.shards) - 1; i >= 0; i-- {
		st.shards[i].mu.RUnlock()
	}
}

// lockShards write-locks the shards named by mask in ascending order
// (the Txn.Commit multi-shard path; caller holds Store.mu).
func (st *Store) lockShards(mask uint64) {
	for i := range st.shards {
		if mask&(1<<uint(i)) != 0 {
			st.shards[i].mu.Lock()
		}
	}
}

// unlockShards releases what lockShards acquired, in reverse order.
func (st *Store) unlockShards(mask uint64) {
	for i := len(st.shards) - 1; i >= 0; i-- {
		if mask&(1<<uint(i)) != 0 {
			st.shards[i].mu.Unlock()
		}
	}
}

// mergedGidsLocked returns the sorted union of the per-shard graph-id
// slices. Caller holds every shard lock (read or write); with one
// shard the live slice is returned directly and must not be retained
// past the lock.
func (st *Store) mergedGidsLocked() ids {
	if len(st.shards) == 1 {
		return st.shards[0].gids
	}
	var out ids
	for _, sh := range st.shards {
		out = mergeIDs(out, sh.gids)
	}
	return out
}

// mergeIDs returns the sorted union of two sorted id slices. The
// result never aliases b (shard state), so it survives lock release.
func mergeIDs(a, b ids) ids {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append(ids(nil), b...)
	}
	out := make(ids, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ShardStat sizes one shard for ShardStats and the shard gauges.
type ShardStat struct {
	// Quads and Graphs count this shard's share; Epoch is the global
	// epoch as of the shard's last mutation.
	Quads  int    `json:"quads"`
	Graphs int    `json:"graphs"`
	Epoch  uint64 `json:"epoch"`
}

// ShardStats snapshots per-shard sizes (one short lock hold per
// shard). Shares are disjoint: summing Quads gives Len().
func (st *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(st.shards))
	for i, sh := range st.shards {
		sh.mu.RLock()
		out[i] = ShardStat{Quads: sh.size, Graphs: len(sh.graphs), Epoch: sh.epoch}
		sh.mu.RUnlock()
	}
	return out
}
