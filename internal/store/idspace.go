package store

import (
	"time"

	"lodify/internal/obs"
	"lodify/internal/rdf"
)

// ID-space read API: the SPARQL engine executes basic graph patterns
// directly on dictionary ids (one uint64 compare per join check) and
// only materializes rdf.Terms at expression and projection
// boundaries. The Lease additionally amortizes locking: one RLock
// acquisition covers an entire BGP join instead of one per Count/Match
// call, and term materialization inside the lease is lock-free via a
// dictionary snapshot.

// AnyGraph is the graph-position wildcard for the ID-level calls.
// (TermID 0 cannot double as the wildcard there: it already addresses
// the default graph.)
const AnyGraph TermID = ^TermID(0)

// LookupID resolves a term to its dictionary id without interning;
// ok is false when the term has never been stored. The zero term maps
// to id 0.
func (st *Store) LookupID(t rdf.Term) (TermID, bool) { return st.dict.lookup(t) }

// TermOf resolves a dictionary id back to its term. Unknown ids yield
// the zero term.
func (st *Store) TermOf(id TermID) rdf.Term { return st.dict.term(id) }

// MatchIDs calls fn for every quad matching the id pattern. Id 0 in
// the s/p/o positions is a wildcard; the graph position takes a
// concrete graph id (0 = default graph) or AnyGraph to range over all
// graphs in sorted-gid order. fn returning false stops the iteration.
func (st *Store) MatchIDs(s, p, o, g TermID, fn func(s, p, o, g TermID) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.matchIDsLocked(s, p, o, g, fn)
}

// CountIDs returns the number of quads matching the id pattern, with
// the same pattern conventions as MatchIDs.
func (st *Store) CountIDs(s, p, o, g TermID) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.countIDsLocked(s, p, o, g)
}

// matchIDsLocked is MatchIDs with st.mu already held (Lease path).
func (st *Store) matchIDsLocked(s, p, o, g TermID, fn func(s, p, o, g TermID) bool) bool {
	if g != AnyGraph {
		gi, ok := st.graphs[g]
		if !ok {
			return true
		}
		return gi.scan(s, p, o, func(ms, mp, mo TermID) bool { return fn(ms, mp, mo, g) })
	}
	for _, gid := range st.gids {
		gid := gid
		if !st.graphs[gid].scan(s, p, o, func(ms, mp, mo TermID) bool { return fn(ms, mp, mo, gid) }) {
			return false
		}
	}
	return true
}

// countIDsLocked is CountIDs with st.mu already held (Lease path).
func (st *Store) countIDsLocked(s, p, o, g TermID) int {
	if g != AnyGraph {
		gi, ok := st.graphs[g]
		if !ok {
			return 0
		}
		return gi.count(s, p, o)
	}
	n := 0
	for _, gi := range st.graphs {
		n += gi.count(s, p, o)
	}
	return n
}

// Lease is a query-scoped read snapshot: it holds the store's read
// lock from ReadLease until Release, so a whole BGP join pays one lock
// acquisition instead of one per Count/Match call.
//
// Contract: a Lease is single-goroutine (concurrent workers each take
// their own), must not outlive the query, and the holder must not call
// any Store write operation — or any locking read such as Match/Count
// from a *different* goroutine's write-blocked future — before
// Release. Release is idempotent.
type Lease struct {
	st       *Store
	terms    []rdf.Term
	wait     time.Duration
	released bool
}

// ReadLease acquires the store read lock and snapshots the term
// dictionary for lock-free materialization. The time spent blocked on
// the lock (writer contention) is recorded in
// lodify_store_lease_wait_seconds and retrievable via Wait — the
// query profiler attributes it to the waiting plan node.
func (st *Store) ReadLease() *Lease {
	start := time.Now()
	st.mu.RLock()
	wait := time.Since(start)
	leaseWait.Observe(wait.Seconds())
	return &Lease{st: st, terms: st.dict.termsSnapshot(), wait: wait}
}

// leaseWait is resolved once: ReadLease is on the per-BGP hot path.
var leaseWait = obs.H("lodify_store_lease_wait_seconds")

// Wait returns how long ReadLease blocked acquiring the read lock.
func (l *Lease) Wait() time.Duration { return l.wait }

// Release drops the read lock. Idempotent.
func (l *Lease) Release() {
	if l.released {
		return
	}
	l.released = true
	l.st.mu.RUnlock()
}

// MatchIDs is Store.MatchIDs under the already-held lease lock. It
// reports whether the scan ran to completion (fn never returned
// false).
func (l *Lease) MatchIDs(s, p, o, g TermID, fn func(s, p, o, g TermID) bool) bool {
	return l.st.matchIDsLocked(s, p, o, g, fn)
}

// CountIDs is Store.CountIDs under the already-held lease lock.
func (l *Lease) CountIDs(s, p, o, g TermID) int {
	return l.st.countIDsLocked(s, p, o, g)
}

// TermOf materializes an id from the lease's dictionary snapshot
// without locking. Ids minted after the lease was taken (or foreign
// ids) yield the zero term.
func (l *Lease) TermOf(id TermID) rdf.Term {
	if id < TermID(len(l.terms)) {
		return l.terms[id]
	}
	return rdf.Term{}
}
