package store

import (
	"fmt"
	"time"

	"lodify/internal/obs"
	"lodify/internal/rdf"
)

// ID-space read API: the SPARQL engine executes basic graph patterns
// directly on dictionary ids (one uint64 compare per join check) and
// only materializes rdf.Terms at expression and projection
// boundaries. The Lease additionally amortizes locking: one cross-
// shard acquisition covers an entire BGP join instead of one per
// Count/Match call, and term materialization inside the lease is
// lock-free via a dictionary snapshot.

// AnyGraph is the graph-position wildcard for the ID-level calls.
// (TermID 0 cannot double as the wildcard there: it already addresses
// the default graph.)
const AnyGraph TermID = ^TermID(0)

// LookupID resolves a term to its dictionary id without interning;
// ok is false when the term has never been stored. The zero term maps
// to id 0.
func (st *Store) LookupID(t rdf.Term) (TermID, bool) { return st.dict.lookup(t) }

// TermOf resolves a dictionary id back to its term. Unknown ids yield
// the zero term.
func (st *Store) TermOf(id TermID) rdf.Term { return st.dict.term(id) }

// MatchIDs calls fn for every quad matching the id pattern. Id 0 in
// the s/p/o positions is a wildcard; the graph position takes a
// concrete graph id (0 = default graph) or AnyGraph to range over all
// graphs in sorted-gid order. fn returning false stops the iteration.
func (st *Store) MatchIDs(s, p, o, g TermID, fn func(s, p, o, g TermID) bool) {
	st.lockAllR()
	defer st.unlockAllR()
	if g != AnyGraph {
		st.matchGraphIDsLocked(g, s, p, o, fn)
		return
	}
	for _, gid := range st.mergedGidsLocked() {
		if !st.matchGraphIDsLocked(gid, s, p, o, fn) {
			return
		}
	}
}

// CountIDs returns the number of quads matching the id pattern, with
// the same pattern conventions as MatchIDs.
func (st *Store) CountIDs(s, p, o, g TermID) int {
	st.lockAllR()
	defer st.unlockAllR()
	return st.countIDsLocked(s, p, o, g)
}

// matchGraphIDsLocked scans one graph with the relevant shard locks
// already held (Lease and locked-store paths). A bound subject visits
// only its owning shard; a subject wildcard walks the graph's slice in
// every shard.
func (st *Store) matchGraphIDsLocked(g, s, p, o TermID, fn func(s, p, o, g TermID) bool) bool {
	wrap := func(ms, mp, mo TermID) bool { return fn(ms, mp, mo, g) }
	return st.scanGraphLocked(g, s, p, o, wrap)
}

// countIDsLocked is CountIDs with the shard locks already held.
func (st *Store) countIDsLocked(s, p, o, g TermID) int {
	if g != AnyGraph {
		if s != 0 {
			gi := st.shards[st.shardIndex(g, s)].graphs[g]
			if gi == nil {
				return 0
			}
			return gi.count(s, p, o)
		}
		n := 0
		for _, sh := range st.shards {
			if gi := sh.graphs[g]; gi != nil {
				n += gi.count(s, p, o)
			}
		}
		return n
	}
	n := 0
	for _, sh := range st.shards {
		for _, gi := range sh.graphs {
			n += gi.count(s, p, o)
		}
	}
	return n
}

// Lease is a query-scoped read snapshot: it holds every shard's read
// lock from ReadLease until Release, so a whole BGP join pays one
// cross-shard acquisition instead of one per Count/Match call. The
// lease additionally pins the store's write epoch — epochs only
// advance under a shard write lock, so the epoch cannot move while
// the lease holds all read locks, and Release checks that invariant.
//
// Contract: a Lease is single-goroutine (concurrent workers each take
// their own), must not outlive the query, and the holder must not call
// any Store write operation — or any locking read such as Match/Count
// from a *different* goroutine's write-blocked future — before
// Release. Release is idempotent.
type Lease struct {
	st    *Store
	terms []rdf.Term
	// gids caches the merged wildcard-graph iteration order, built on
	// first use (the shard gid slices are frozen while the lease holds
	// the read locks).
	gids     ids
	gidsOK   bool
	wait     time.Duration
	epoch    uint64
	released bool
}

// ReadLease acquires every shard's read lock in ascending shard order
// and snapshots the term dictionary for lock-free materialization.
// Uncontended shards are taken via TryRLock without touching the
// clock; for contended shards the blocked time is recorded per shard
// in lodify_store_shard_lease_wait_seconds{shard=i} and the summed
// wait in lodify_store_lease_wait_seconds and Wait — the query
// profiler attributes the sum to the waiting plan node.
func (st *Store) ReadLease() *Lease {
	var wait time.Duration
	for _, sh := range st.shards {
		if sh.mu.TryRLock() {
			continue
		}
		start := time.Now()
		sh.mu.RLock()
		w := time.Since(start)
		sh.leaseWait.Observe(w.Seconds())
		wait += w
	}
	leaseWait.Observe(wait.Seconds())
	return &Lease{
		st:    st,
		terms: st.dict.termsSnapshot(),
		wait:  wait,
		epoch: st.epoch.Load(),
	}
}

// leaseWait is resolved once: ReadLease is on the per-BGP hot path.
var leaseWait = obs.H("lodify_store_lease_wait_seconds")

// Wait returns how long ReadLease blocked acquiring shard read locks
// (summed across shards; uncontended shards contribute zero).
func (l *Lease) Wait() time.Duration { return l.wait }

// Release drops the shard read locks (in reverse order) after
// verifying the pinned epoch: a moved epoch means some writer mutated
// the store while the lease's read locks were held, which the locking
// protocol makes impossible short of a bug — so it panics rather than
// let a torn snapshot escape silently.
func (l *Lease) Release() {
	if l.released {
		return
	}
	l.released = true
	if e := l.st.epoch.Load(); e != l.epoch {
		panic(fmt.Sprintf("store: write epoch advanced %d -> %d during read lease", l.epoch, e))
	}
	l.st.unlockAllR()
}

// graphIDs returns the lease's merged sorted graph-id order, built
// once per lease.
func (l *Lease) graphIDs() ids {
	if !l.gidsOK {
		l.gids = l.st.mergedGidsLocked()
		l.gidsOK = true
	}
	return l.gids
}

// MatchIDs is Store.MatchIDs under the already-held lease locks. It
// reports whether the scan ran to completion (fn never returned
// false).
func (l *Lease) MatchIDs(s, p, o, g TermID, fn func(s, p, o, g TermID) bool) bool {
	if g != AnyGraph {
		return l.st.matchGraphIDsLocked(g, s, p, o, fn)
	}
	for _, gid := range l.graphIDs() {
		if !l.st.matchGraphIDsLocked(gid, s, p, o, fn) {
			return false
		}
	}
	return true
}

// CountIDs is Store.CountIDs under the already-held lease locks.
func (l *Lease) CountIDs(s, p, o, g TermID) int {
	return l.st.countIDsLocked(s, p, o, g)
}

// TermOf materializes an id from the lease's dictionary snapshot
// without locking. Ids minted after the lease was taken (or foreign
// ids) yield the zero term.
func (l *Lease) TermOf(id TermID) rdf.Term {
	if id < TermID(len(l.terms)) {
		return l.terms[id]
	}
	return rdf.Term{}
}
