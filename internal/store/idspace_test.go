package store

import (
	"fmt"
	"sort"
	"testing"

	"lodify/internal/rdf"
)

func TestLookupIDTermOfRoundtrip(t *testing.T) {
	st := New()
	st.MustAdd(quad("s", "p", "o"))
	for _, term := range []rdf.Term{iri("s"), iri("p"), lit("o")} {
		id, ok := st.LookupID(term)
		if !ok || id == 0 {
			t.Fatalf("LookupID(%v) = %d, %v", term, id, ok)
		}
		if got := st.TermOf(id); !got.Equal(term) {
			t.Fatalf("TermOf(%d) = %v, want %v", id, got, term)
		}
	}
	if _, ok := st.LookupID(iri("absent")); ok {
		t.Fatal("LookupID found a never-stored term")
	}
	if id, ok := st.LookupID(rdf.Term{}); !ok || id != 0 {
		t.Fatalf("zero term = %d, %v; want 0, true", id, ok)
	}
	if got := st.TermOf(9999); !got.IsZero() {
		t.Fatalf("TermOf(unknown) = %v, want zero", got)
	}
}

func TestMatchIDsCountIDs(t *testing.T) {
	st := New()
	for i := 0; i < 4; i++ {
		st.MustAdd(quad("s", "p", fmt.Sprintf("o%d", i)))
	}
	g := iri("g")
	st.MustAdd(rdf.Quad{S: iri("s"), P: iri("p"), O: lit("named"), G: g})

	sid, _ := st.LookupID(iri("s"))
	pid, _ := st.LookupID(iri("p"))
	gid, _ := st.LookupID(g)

	if n := st.CountIDs(sid, pid, 0, AnyGraph); n != 5 {
		t.Fatalf("CountIDs any graph = %d, want 5", n)
	}
	if n := st.CountIDs(sid, pid, 0, 0); n != 4 {
		t.Fatalf("CountIDs default graph = %d, want 4", n)
	}
	if n := st.CountIDs(sid, pid, 0, gid); n != 1 {
		t.Fatalf("CountIDs named graph = %d, want 1", n)
	}

	var got []string
	st.MatchIDs(sid, pid, 0, AnyGraph, func(s, p, o, g TermID) bool {
		got = append(got, st.TermOf(o).Value()+"@"+st.TermOf(g).Value())
		return true
	})
	sort.Strings(got)
	want := []string{"named@http://ex.org/g", "o0@", "o1@", "o2@", "o3@"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("MatchIDs = %v, want %v", got, want)
	}

	// Early stop.
	n := 0
	st.MatchIDs(sid, pid, 0, AnyGraph, func(s, p, o, g TermID) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early-stop visited %d quads", n)
	}
}

func TestLeaseMatchesStoreReads(t *testing.T) {
	st := New()
	st.MustAdd(quad("s", "p", "o"))
	sid, _ := st.LookupID(iri("s"))

	l := st.ReadLease()
	if n := l.CountIDs(sid, 0, 0, AnyGraph); n != 1 {
		t.Fatalf("lease CountIDs = %d, want 1", n)
	}
	seen := 0
	if !l.MatchIDs(sid, 0, 0, AnyGraph, func(s, p, o, g TermID) bool {
		seen++
		if got := l.TermOf(o); !got.Equal(lit("o")) {
			t.Fatalf("lease TermOf = %v", got)
		}
		return true
	}) {
		t.Fatal("MatchIDs reported early stop")
	}
	if seen != 1 {
		t.Fatalf("lease MatchIDs visited %d", seen)
	}
	l.Release()
	l.Release() // idempotent

	// A term interned after the lease snapshot misses the snapshot but
	// the store itself resolves it.
	l2 := st.ReadLease()
	l2.Release()
	st.MustAdd(quad("s2", "p2", "o2"))
	id, _ := st.LookupID(iri("s2"))
	if got := l2.TermOf(id); !got.IsZero() {
		t.Fatalf("stale lease resolved new id to %v", got)
	}
	if got := st.TermOf(id); !got.Equal(iri("s2")) {
		t.Fatalf("store TermOf new id = %v", got)
	}
}

// TestGraphSetMaintained checks the incrementally-maintained sorted
// graph-id slice against the graphs map across adds, removes and
// transactional commits.
func TestGraphSetMaintained(t *testing.T) {
	st := New()
	check := func(stage string) {
		t.Helper()
		for si, sh := range st.shards {
			sh.mu.RLock()
			if len(sh.gids) != len(sh.graphs) {
				sh.mu.RUnlock()
				t.Fatalf("%s: shard %d gids len %d, graphs len %d", stage, si, len(sh.gids), len(sh.graphs))
			}
			for i, g := range sh.gids {
				if _, ok := sh.graphs[g]; !ok {
					sh.mu.RUnlock()
					t.Fatalf("%s: shard %d gid %d not in graphs map", stage, si, g)
				}
				if i > 0 && sh.gids[i-1] >= g {
					sh.mu.RUnlock()
					t.Fatalf("%s: shard %d gids not strictly sorted at %d", stage, si, i)
				}
			}
			sh.mu.RUnlock()
		}
	}
	for i := 0; i < 5; i++ {
		g := rdf.Term{}
		if i > 0 {
			g = iri(fmt.Sprintf("g%d", i))
		}
		st.MustAdd(rdf.Quad{S: iri("s"), P: iri("p"), O: lit(fmt.Sprint(i)), G: g})
	}
	check("after adds")

	tx := st.Begin()
	if err := tx.Add(rdf.Quad{S: iri("s"), P: iri("p"), O: lit("tx"), G: iri("gtx")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check("after commit")

	st.Remove(rdf.Quad{S: iri("s"), P: iri("p"), O: lit("2"), G: iri("g2")})
	check("after graph-emptying remove")

	// Wildcard Match must see every remaining graph.
	graphs := map[string]bool{}
	st.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}, rdf.Term{}, func(q rdf.Quad) bool {
		graphs[q.G.Value()] = true
		return true
	})
	if len(graphs) != 5 { // default + g1, g3, g4, gtx
		t.Fatalf("wildcard Match saw graphs %v", graphs)
	}
}
