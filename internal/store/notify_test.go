package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"lodify/internal/rdf"
)

// deltaLog collects hook deliveries (hooks may run concurrently when
// writers do, so it locks).
type deltaLog struct {
	mu     sync.Mutex
	deltas []Delta
}

func (dl *deltaLog) hook(d Delta) {
	// Copy: the delta slices are only valid for the call.
	cp := Delta{
		Added:   append([]IDQuad(nil), d.Added...),
		Removed: append([]IDQuad(nil), d.Removed...),
		Epoch:   d.Epoch, AtUnixNano: d.AtUnixNano,
	}
	dl.mu.Lock()
	dl.deltas = append(dl.deltas, cp)
	dl.mu.Unlock()
}

func (dl *deltaLog) totals() (added, removed int) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	for _, d := range dl.deltas {
		added += len(d.Added)
		removed += len(d.Removed)
	}
	return added, removed
}

// TestOnCommitPaths checks every mutation path delivers exactly the
// applied quads: duplicates and absent removals produce no entries.
func TestOnCommitPaths(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := NewSharded(shards)
			var dl deltaLog
			cancel := st.OnCommit(dl.hook)
			defer cancel()

			// Add path: one real insert, one duplicate.
			st.MustAdd(statQuad("knows", 1, 2, ""))
			st.MustAdd(statQuad("knows", 1, 2, ""))
			if a, r := dl.totals(); a != 1 || r != 0 {
				t.Fatalf("after Add: delta totals (%d, %d), want (1, 0)", a, r)
			}

			// Hooks can read the store (all locks are down when they fire).
			verify := st.OnCommit(func(d Delta) {
				for _, q := range d.Added {
					if st.CountIDs(q.S, q.P, q.O, q.G) != 1 {
						t.Error("added quad not visible inside hook")
					}
				}
			})
			st.MustAdd(statQuad("knows", 3, 4, ""))
			verify()

			// Remove path.
			st.Remove(statQuad("knows", 1, 2, ""))
			st.Remove(statQuad("knows", 1, 2, "")) // absent: no delta
			if a, r := dl.totals(); a != 2 || r != 1 {
				t.Fatalf("after Remove: delta totals (%d, %d), want (2, 1)", a, r)
			}

			// Txn path: cross-shard batch, one delivery.
			before := len(dl.deltas)
			tx := st.Begin()
			for i := 0; i < 6; i++ {
				if err := tx.Add(statQuad("tag", i, i, fmt.Sprintf("g/%d", i%3))); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Remove(statQuad("knows", 3, 4, "")); err != nil {
				t.Fatal(err)
			}
			if _, _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			dl.mu.Lock()
			txnDeltas := len(dl.deltas) - before
			last := dl.deltas[len(dl.deltas)-1]
			dl.mu.Unlock()
			if txnDeltas != 1 {
				t.Fatalf("Txn.Commit fired %d deltas, want 1", txnDeltas)
			}
			if len(last.Added) != 6 || len(last.Removed) != 1 {
				t.Fatalf("Txn delta (%d added, %d removed), want (6, 1)", len(last.Added), len(last.Removed))
			}
			if last.Epoch == 0 || last.AtUnixNano == 0 {
				t.Fatalf("Txn delta missing epoch/timestamp: %+v", last)
			}

			// Bulk path: one delivery per batch, duplicates excluded.
			bl := st.NewBulkLoader()
			var batch []rdf.Quad
			for i := 0; i < 30; i++ {
				batch = append(batch, statQuad("rated", i, i, "g/bulk"))
			}
			batch = append(batch, batch[0]) // in-batch duplicate
			before = len(dl.deltas)
			if _, err := bl.AddBatch(batch); err != nil {
				t.Fatal(err)
			}
			dl.mu.Lock()
			bulkDeltas := len(dl.deltas) - before
			last = dl.deltas[len(dl.deltas)-1]
			dl.mu.Unlock()
			if bulkDeltas != 1 {
				t.Fatalf("AddBatch fired %d deltas, want 1", bulkDeltas)
			}
			if len(last.Added) != 30 {
				t.Fatalf("bulk delta has %d added, want 30", len(last.Added))
			}

			// Cancel: later commits are not delivered.
			cancel()
			cancel() // idempotent
			a0, r0 := dl.totals()
			st.MustAdd(statQuad("knows", 100, 100, ""))
			if a, r := dl.totals(); a != a0 || r != r0 {
				t.Fatal("hook delivered after cancel")
			}
		})
	}
}

// TestOnCommitHandoffRace exercises the sanctioned commit-hook shape
// the hookreent analyzer enforces (and the matview registry uses under
// its reviewed nolock annotation): the hook does a bounded append
// under a queue-local lock and wakes a maintenance goroutine, which
// drains the queue and re-reads the store off the commit path. Under
// -race this proves the handoff is race-clean while writers commit
// concurrently, and the accounting proves no delta is lost to a
// coalesced wakeup.
func TestOnCommitHandoffRace(t *testing.T) {
	st := NewSharded(8)

	var (
		qmu   sync.Mutex
		queue []Delta
	)
	wake := make(chan struct{}, 1)
	cancel := st.OnCommit(func(d Delta) {
		cp := Delta{Added: append([]IDQuad(nil), d.Added...), Epoch: d.Epoch}
		qmu.Lock()
		queue = append(queue, cp)
		qmu.Unlock()
		select {
		case wake <- struct{}{}:
		default: // a wakeup is already pending; the drain loop coalesces
		}
	})
	defer cancel()

	var drained atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range wake {
			qmu.Lock()
			batch := queue
			queue = nil
			qmu.Unlock()
			for _, d := range batch {
				for _, q := range d.Added {
					if st.CountIDs(q.S, q.P, q.O, q.G) != 1 {
						t.Error("maintenance read missed a committed quad")
					}
					drained.Add(1)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	const writers, per = 4, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.MustAdd(statQuad("seen", w*per+i, i, ""))
			}
		}(w)
	}
	wg.Wait()
	cancel() // no further hook invocations: safe to close the wake channel
	close(wake)
	<-done

	// A wakeup coalesced into an in-flight drain can leave a final
	// batch behind; it is the next drain's work, or shutdown's here.
	leftover := 0
	qmu.Lock()
	for _, d := range queue {
		leftover += len(d.Added)
	}
	qmu.Unlock()
	if got := int(drained.Load()) + leftover; got != writers*per {
		t.Fatalf("hand-off saw %d adds (%d drained + %d leftover), want %d",
			got, drained.Load(), leftover, writers*per)
	}
	if st.Len() != writers*per {
		t.Fatalf("store has %d quads, want %d", st.Len(), writers*per)
	}
}

// TestOnCommitConcurrent runs concurrent bulk writers and checks the
// union of deltas matches the final store size (run under -race this
// also proves hook delivery is race-clean).
func TestOnCommitConcurrent(t *testing.T) {
	st := NewSharded(8)
	var dl deltaLog
	defer st.OnCommit(dl.hook)()

	var wg sync.WaitGroup
	const writers, per = 4, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bl := st.NewBulkLoader()
			for i := 0; i < per; i += 50 {
				var batch []rdf.Quad
				for j := i; j < i+50; j++ {
					batch = append(batch, statQuad("p", w*per+j, j, fmt.Sprintf("g/%d", w)))
				}
				if _, err := bl.AddBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if a, _ := dl.totals(); a != writers*per {
		t.Fatalf("delta union has %d adds, want %d", a, writers*per)
	}
	if st.Len() != writers*per {
		t.Fatalf("store has %d quads, want %d", st.Len(), writers*per)
	}
}
