// Package store implements the platform's semantic triple store: an
// in-memory, indexed RDF quad store with full-text and geospatial
// secondary indexes, transactions and N-Quads persistence. It stands
// in for the Openlink Virtuoso instance of the paper (§2.1, §2.3); the
// SPARQL engine in internal/sparql executes against it, including the
// Virtuoso-style bif:st_intersects and bif:contains extensions.
package store

import (
	"hash/maphash"
	"sync"

	"lodify/internal/rdf"
)

// TermID identifies a term in the store's dictionary. 0 is reserved to
// mean "no term" (the default graph, unbound pattern positions and —
// in ID-level pattern matching — the wildcard). IDs are dense and
// stable for the lifetime of the store; the SPARQL engine executes
// joins directly on them and materializes rdf.Terms only at expression
// and projection boundaries.
type TermID uint64

// dictSlot is one open-addressing slot: the term's precomputed hash
// plus its id. id 0 (reserved for the zero term, which is never
// stored) doubles as the empty marker.
type dictSlot struct {
	hash uint64
	id   TermID
}

// dict interns RDF terms to dense ids. It is safe for concurrent use.
//
// The term→id direction is a hand-rolled open-addressing table rather
// than a Go map: interning is the bulk-ingest hot path, and a built-in
// map keyed by the four-field Term struct re-hashes every string field
// on every probe and again on every growth rehash. Here each term is
// hashed once, the hash is stored in the slot, lookups linear-probe
// with a cheap uint64 compare before the full Term equality check, and
// growth reinserts by stored hash without touching the strings. The
// dictionary is append-only (terms are never deleted), so there are no
// tombstones.
type dict struct {
	mu    sync.RWMutex
	seed  maphash.Seed
	slots []dictSlot // len is a power of two
	used  int
	terms []rdf.Term // terms[0] is the zero term
}

func newDict() *dict {
	return &dict{
		seed:  maphash.MakeSeed(),
		slots: make([]dictSlot, 256),
		terms: make([]rdf.Term, 1),
	}
}

// hashTerm hashes every identity-bearing field of t. Equal terms hash
// equal; the rare cross-kind or cross-datatype collision is resolved
// by the full equality check at probe time.
func (d *dict) hashTerm(t rdf.Term) uint64 {
	h := maphash.String(d.seed, t.Value()) ^ (uint64(t.Kind()) * 0x9e3779b97f4a7c15)
	if lang := t.Lang(); lang != "" {
		h ^= maphash.String(d.seed, lang)
	} else if t.IsLiteral() {
		if dt := t.Datatype(); dt != rdf.XSDString {
			h ^= maphash.String(d.seed, dt) * 3
		}
	}
	return h
}

// lookupHash finds t (with precomputed hash h) under d.mu (either
// mode).
func (d *dict) lookupHash(t rdf.Term, h uint64) (TermID, bool) {
	mask := uint64(len(d.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		sl := d.slots[i]
		if sl.id == 0 {
			return 0, false
		}
		if sl.hash == h && d.terms[sl.id] == t {
			return sl.id, true
		}
	}
}

// internHashLocked interns t (with precomputed hash h) under the
// already-held write lock. The term is cloned before it is retained:
// parser-produced terms may alias a whole input line or parse chunk,
// and the dictionary lives forever.
func (d *dict) internHashLocked(t rdf.Term, h uint64) TermID {
	mask := uint64(len(d.slots) - 1)
	i := h & mask
	for {
		sl := d.slots[i]
		if sl.id == 0 {
			break
		}
		if sl.hash == h && d.terms[sl.id] == t {
			return sl.id
		}
		i = (i + 1) & mask
	}
	id := TermID(len(d.terms))
	d.terms = append(d.terms, t.Clone())
	d.slots[i] = dictSlot{hash: h, id: id}
	d.used++
	if d.used*4 > len(d.slots)*3 { // grow at 3/4 load
		d.grow()
	}
	return id
}

// grow doubles the slot table, reinserting by stored hash.
func (d *dict) grow() {
	old := d.slots
	d.slots = make([]dictSlot, len(old)*2)
	mask := uint64(len(d.slots) - 1)
	for _, sl := range old {
		if sl.id == 0 {
			continue
		}
		i := sl.hash & mask
		for d.slots[i].id != 0 {
			i = (i + 1) & mask
		}
		d.slots[i] = sl
	}
}

// intern returns the id for t, allocating one if needed.
func (d *dict) intern(t rdf.Term) TermID {
	if t.IsZero() {
		return 0
	}
	h := d.hashTerm(t)
	d.mu.RLock()
	id, ok := d.lookupHash(t, h)
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.internHashLocked(t, h)
}

// internLocked interns t under the already-held write lock.
func (d *dict) internLocked(t rdf.Term) TermID {
	return d.internHashLocked(t, d.hashTerm(t))
}

// iquad is a quad resolved to dictionary ids.
type iquad struct {
	s, p, o, g TermID
}

// cmpIquad orders iquads by (g, s, p, o) id — the batch-apply order of
// the bulk loader.
func cmpIquad(a, b iquad) int {
	switch {
	case a.g != b.g:
		if a.g < b.g {
			return -1
		}
		return 1
	case a.s != b.s:
		if a.s < b.s {
			return -1
		}
		return 1
	case a.p != b.p:
		if a.p < b.p {
			return -1
		}
		return 1
	case a.o != b.o:
		if a.o < b.o {
			return -1
		}
		return 1
	}
	return 0
}

// unresolved marks a miss in internQuads' read pass. It can never
// collide with a real id: ^0 is AnyGraph, which is a pattern-only
// value the dictionary never allocates.
const unresolved = ^TermID(0)

// termMemoSize is the ring capacity of internQuads' per-position
// memo. Position vocabularies in dump-shaped input are tiny over a
// window this size (a handful of predicates cycling line to line, a
// subject repeated across its statements), so eight entries catch the
// repeats a last-one memo misses while a linear struct-compare scan
// stays far cheaper than hashing the term into the full dictionary.
const termMemoSize = 8

// termMemo is a fixed-size FIFO ring of recently resolved terms for
// one quad position. Entries may alias parser chunk memory; a memo
// never outlives its internQuads call.
type termMemo struct {
	terms   [termMemoSize]rdf.Term
	ids     [termMemoSize]TermID
	n, next int
}

func (m *termMemo) get(t rdf.Term) (TermID, bool) {
	for i := 0; i < m.n; i++ {
		if m.terms[i] == t {
			return m.ids[i], true
		}
	}
	return 0, false
}

func (m *termMemo) put(t rdf.Term, id TermID) {
	m.terms[m.next], m.ids[m.next] = t, id
	m.next = (m.next + 1) % termMemoSize
	if m.n < termMemoSize {
		m.n++
	}
}

// internQuads resolves a batch of quads to ids: one read-lock pass
// resolves the hits — with a small memo ring per position, since bulk
// input arrives with runs of repeated subjects and a cycling handful
// of predicates and graphs — and a single write-lock pass interns the
// misses in input order (so ids come out exactly as a sequential
// Add-loop would have assigned them). out and scratch are reused
// caller scratch; the updated scratch is returned for reuse.
func (d *dict) internQuads(quads []rdf.Quad, out []iquad, scratch []uint64) ([]iquad, []uint64) {
	if cap(out) < len(quads) {
		out = make([]iquad, len(quads))
	}
	out = out[:len(quads)]
	// pending queues the hash of each read-pass miss, in encounter
	// order; the write pass below visits misses in exactly that order,
	// so every term is hashed at most once per batch.
	pending := scratch[:0]
	var memoS, memoP, memoO, memoG termMemo
	d.mu.RLock()
	resolve := func(t rdf.Term, memo *termMemo) TermID {
		if t.IsZero() {
			return 0
		}
		if id, ok := memo.get(t); ok {
			return id
		}
		h := d.hashTerm(t)
		id, ok := d.lookupHash(t, h)
		if !ok {
			pending = append(pending, h)
			return unresolved // no memo update: id unknown until the write pass
		}
		memo.put(t, id)
		return id
	}
	for i, q := range quads {
		out[i] = iquad{
			s: resolve(q.S, &memoS),
			p: resolve(q.P, &memoP),
			o: resolve(q.O, &memoO),
			g: resolve(q.G, &memoG),
		}
	}
	d.mu.RUnlock()
	if len(pending) == 0 {
		return out, pending
	}
	d.mu.Lock()
	next := 0
	take := func() uint64 { h := pending[next]; next++; return h }
	for i := range out {
		if out[i].s == unresolved {
			out[i].s = d.internHashLocked(quads[i].S, take())
		}
		if out[i].p == unresolved {
			out[i].p = d.internHashLocked(quads[i].P, take())
		}
		if out[i].o == unresolved {
			out[i].o = d.internHashLocked(quads[i].O, take())
		}
		if out[i].g == unresolved {
			out[i].g = d.internHashLocked(quads[i].G, take())
		}
	}
	d.mu.Unlock()
	return out, pending
}

// lookupLocked is lookup with d.mu already held (either mode).
func (d *dict) lookupLocked(t rdf.Term) (TermID, bool) {
	if t.IsZero() {
		return 0, true
	}
	return d.lookupHash(t, d.hashTerm(t))
}

// lookupPattern resolves the three triple-pattern positions under a
// single read-lock hold (the Match/Count hot path previously paid
// three acquisitions). ok is false when any non-zero term is unknown,
// i.e. the pattern cannot match anything.
func (d *dict) lookupPattern(s, p, o rdf.Term) (si, pi, oi TermID, ok bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if si, ok = d.lookupLocked(s); !ok {
		return
	}
	if pi, ok = d.lookupLocked(p); !ok {
		return
	}
	oi, ok = d.lookupLocked(o)
	return
}

// lookup returns the id for t without allocating; ok is false when the
// term has never been interned.
func (d *dict) lookup(t rdf.Term) (TermID, bool) {
	if t.IsZero() {
		return 0, true
	}
	h := d.hashTerm(t)
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lookupHash(t, h)
}

// term returns the term for id. id 0 yields the zero term.
func (d *dict) term(id TermID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.terms) {
		return rdf.Term{}
	}
	return d.terms[id]
}

// termsSnapshot returns the current id→term table. The table is
// append-only (entries are never rewritten), so holders may index it
// lock-free for any id below its length; terms interned later land in
// a newer backing array and simply miss the snapshot.
func (d *dict) termsSnapshot() []rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms
}

// size returns the number of interned terms.
func (d *dict) size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms) - 1
}
