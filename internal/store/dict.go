// Package store implements the platform's semantic triple store: an
// in-memory, indexed RDF quad store with full-text and geospatial
// secondary indexes, transactions and N-Quads persistence. It stands
// in for the Openlink Virtuoso instance of the paper (§2.1, §2.3); the
// SPARQL engine in internal/sparql executes against it, including the
// Virtuoso-style bif:st_intersects and bif:contains extensions.
package store

import (
	"sync"

	"lodify/internal/rdf"
)

// TermID identifies a term in the store's dictionary. 0 is reserved to
// mean "no term" (the default graph, unbound pattern positions and —
// in ID-level pattern matching — the wildcard). IDs are dense and
// stable for the lifetime of the store; the SPARQL engine executes
// joins directly on them and materializes rdf.Terms only at expression
// and projection boundaries.
type TermID uint64

// dict interns RDF terms to dense ids. It is safe for concurrent use.
type dict struct {
	mu    sync.RWMutex
	ids   map[rdf.Term]TermID
	terms []rdf.Term // terms[0] is the zero term
}

func newDict() *dict {
	return &dict{
		ids:   make(map[rdf.Term]TermID),
		terms: make([]rdf.Term, 1),
	}
}

// intern returns the id for t, allocating one if needed.
func (d *dict) intern(t rdf.Term) TermID {
	if t.IsZero() {
		return 0
	}
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	id = TermID(len(d.terms))
	d.terms = append(d.terms, t)
	d.ids[t] = id
	return id
}

// lookup returns the id for t without allocating; ok is false when the
// term has never been interned.
func (d *dict) lookup(t rdf.Term) (TermID, bool) {
	if t.IsZero() {
		return 0, true
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[t]
	return id, ok
}

// term returns the term for id. id 0 yields the zero term.
func (d *dict) term(id TermID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.terms) {
		return rdf.Term{}
	}
	return d.terms[id]
}

// termsSnapshot returns the current id→term table. The table is
// append-only (entries are never rewritten), so holders may index it
// lock-free for any id below its length; terms interned later land in
// a newer backing array and simply miss the snapshot.
func (d *dict) termsSnapshot() []rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms
}

// size returns the number of interned terms.
func (d *dict) size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms) - 1
}
