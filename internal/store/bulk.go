package store

import (
	"slices"
	"time"

	"lodify/internal/geo"
	"lodify/internal/obs"
	"lodify/internal/rdf"
)

// Bulk ingest (DESIGN.md §10): where Add pays four dictionary
// acquisitions, one store lock and per-quad secondary indexing for
// every statement, the BulkLoader amortizes all of it across a batch —
// one read-locked dictionary sweep plus one write-locked miss pass,
// id-space deduplication, tokenization and WKT parsing outside the
// store lock, then a single st.mu hold that bulk-inserts into the
// graph indexes and merges text-index deltas grouped by object term.

// Process-wide ingest metrics.
var (
	mIngestQuads   = obs.C("lodify_ingest_quads_total")
	mIngestBatches = obs.C("lodify_ingest_batches_total")
	mIngestApply   = obs.H("lodify_ingest_batch_apply_seconds")
	gIngestWorkers = obs.G("lodify_ingest_parse_workers")
	// gIngestUtil is parse-worker utilization of the last chunked load,
	// in permille (gauges are integral).
	gIngestUtil = obs.G("lodify_ingest_parse_utilization_permille")
	gIngestRate = obs.G("lodify_ingest_rate_quads_per_second")
)

// geoPt is a parsed geo:geometry object staged for apply.
type geoPt struct {
	pt geo.Point
	ok bool
}

// BulkLoader ingests batches of quads with one store-lock acquisition
// per batch. It is not safe for concurrent use (callers feed it from
// one goroutine — the chunked parser's emit callback already is); the
// store itself stays fully concurrent-safe for other readers/writers
// between batches.
//
// Batch terms may alias parser chunk memory: everything the store
// retains is cloned at intern time, so no input buffer outlives the
// AddBatch call.
type BulkLoader struct {
	st    *Store
	added int

	// Scratch reused across batches: per-quad parallel arrays (resolved
	// ids, text tokens, parsed points) plus the sorted apply order.
	iquads   []iquad
	hashes   []uint64
	toks     [][]string
	geos     []geoPt
	order    []int32
	keys     []uint64
	tokCache map[TermID][]string
	// postCache maps a distinct literal-object id to its resolved
	// postings (one per token, carved from postSlab), so repeated
	// literals in a batch hit the string-keyed text index once.
	postCache map[TermID][]*posting
	postSlab  []*posting
}

// NewBulkLoader returns a loader feeding st.
func (st *Store) NewBulkLoader() *BulkLoader {
	return &BulkLoader{
		st:        st,
		tokCache:  make(map[TermID][]string),
		postCache: make(map[TermID][]*posting),
	}
}

// Added returns the total number of quads this loader actually
// inserted (duplicates excluded).
func (bl *BulkLoader) Added() int { return bl.added }

// AddBatch ingests one batch. Every quad's triple component must be
// valid RDF; an invalid quad fails the whole batch before anything is
// applied. It returns the number of quads that were new to the store.
func (bl *BulkLoader) AddBatch(quads []rdf.Quad) (int, error) {
	if len(quads) == 0 {
		return 0, nil
	}
	for _, q := range quads {
		if err := q.Triple().Validate(); err != nil {
			return 0, err
		}
	}
	st := bl.st
	bl.iquads, bl.hashes = st.dict.internQuads(quads, bl.iquads, bl.hashes)

	// Precompute secondary-index work outside the lock. Repeated
	// literal objects (ratings, shared tags) tokenize once per batch.
	// Duplicates — in-batch or already stored — need no pre-filter
	// here: the index insert below rejects them in id space, and a
	// duplicate's staged tokens are simply never merged.
	clear(bl.tokCache)
	clear(bl.postCache)
	bl.postSlab = bl.postSlab[:0]
	if cap(bl.toks) < len(quads) {
		bl.toks = make([][]string, len(quads))
		bl.geos = make([]geoPt, len(quads))
	} else {
		bl.toks = bl.toks[:len(quads)]
		bl.geos = bl.geos[:len(quads)]
		clear(bl.toks)
		clear(bl.geos)
	}
	for i, e := range bl.iquads {
		if q := quads[i]; q.O.IsLiteral() {
			toks, ok := bl.tokCache[e.o]
			if !ok {
				toks = Tokenize(q.O.Value())
				bl.tokCache[e.o] = toks
			}
			bl.toks[i] = toks
			if q.P.Value() == rdf.GeoGeometry {
				if pt, err := geo.ParseWKT(q.O.Value()); err == nil {
					bl.geos[i] = geoPt{pt: pt, ok: true}
				}
			}
		}
	}

	// Sort an index over the batch by (g, s) id — the store's final
	// state is order-independent within a batch (ids were assigned in
	// input order above, index postings are sorted sets, text refcounts
	// and geo inserts commute), and grouping by graph and subject is
	// what turns the lookups below into memo hits. When the ids fit —
	// any store under 16M terms whose graph terms landed in the first
	// 1M, i.e. essentially every bulk load — the key packs into a
	// uint64 with the batch index in the low bits, and a comparator-free
	// slices.Sort replaces the 4-field SortFunc.
	bl.order = bl.order[:0]
	var maxG, maxS TermID
	for _, e := range bl.iquads {
		maxG, maxS = max(maxG, e.g), max(maxS, e.s)
	}
	if maxG < 1<<20 && maxS < 1<<24 && len(bl.iquads) <= 1<<20 {
		keys := bl.keys[:0]
		for i, e := range bl.iquads {
			keys = append(keys, uint64(e.g)<<44|uint64(e.s)<<20|uint64(i))
		}
		slices.Sort(keys)
		bl.keys = keys
		for _, k := range keys {
			bl.order = append(bl.order, int32(k&(1<<20-1)))
		}
	} else {
		for i := range bl.iquads {
			bl.order = append(bl.order, int32(i))
		}
		slices.SortFunc(bl.order, func(a, b int32) int { return cmpIquad(bl.iquads[a], bl.iquads[b]) })
	}

	// Apply under one lock hold. Graph and subject-node lookups are
	// memoized across the sorted runs, predicate and object nodes via
	// small rings; text postings resolve once per distinct literal
	// object in the batch via postCache.
	start := time.Now()
	st.mu.Lock()
	added := 0
	var gi *graphIndex
	var spoNode *pairSet
	var posMemo, ospMemo nodeMemo
	gcur := AnyGraph // sentinel: AnyGraph is never a stored graph id
	scur := AnyGraph // likewise never a stored subject id
	for _, idx := range bl.order {
		e := bl.iquads[idx]
		if gi == nil || e.g != gcur {
			var ok bool
			gi, ok = st.graphs[e.g]
			if !ok {
				gi = newGraphIndex()
				st.graphs[e.g] = gi
				st.gids, _ = st.gids.insert(e.g)
			}
			gcur, scur = e.g, AnyGraph
			posMemo.reset()
			ospMemo.reset()
		}
		if e.s != scur {
			spoNode = gi.spo.node(e.s, gi)
			scur = e.s
		}
		posN := posMemo.get(gi.pos, gi, e.p)
		ospN := ospMemo.get(gi.osp, gi, e.o)
		if !gi.addNodes(spoNode, posN, ospN, e.s, e.p, e.o) {
			continue // already stored: secondary indexes unchanged
		}
		st.size++
		added++
		if toks := bl.toks[idx]; len(toks) > 0 {
			posts, ok := bl.postCache[e.o]
			if !ok {
				lo := len(bl.postSlab)
				bl.postSlab = st.text.resolvePostings(bl.postSlab, toks)
				posts = bl.postSlab[lo:len(bl.postSlab):len(bl.postSlab)]
				bl.postCache[e.o] = posts
			}
			for _, p := range posts {
				p.add(e.s)
			}
		}
		if gp := bl.geos[idx]; gp.ok {
			st.geo.Insert(uint64(e.s), gp.pt)
		}
	}
	st.mu.Unlock()

	mIngestApply.ObserveSince(start)
	mIngestBatches.Inc()
	mIngestQuads.Add(int64(len(quads)))
	mQuadsAdded.Add(int64(added))
	bl.added += added
	return added, nil
}
