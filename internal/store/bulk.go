package store

import (
	"slices"
	"sync"
	"time"

	"lodify/internal/geo"
	"lodify/internal/obs"
	"lodify/internal/rdf"
)

// Bulk ingest (DESIGN.md §10, §14): where Add pays four dictionary
// acquisitions, one shard lock and per-quad secondary indexing for
// every statement, the BulkLoader amortizes all of it across a batch —
// one read-locked dictionary sweep plus one write-locked miss pass,
// id-space deduplication, tokenization and WKT parsing outside the
// store locks, then one write-lock hold per touched shard that
// bulk-inserts into the graph indexes and merges text-index deltas
// grouped by object term. On a sharded store the per-shard applies run
// in parallel: the batch sort already groups quads by (graph, subject)
// — the same key shard routing hashes — so each shard's slice of the
// batch keeps the memoization-friendly order.

// Process-wide ingest metrics.
var (
	mIngestQuads   = obs.C("lodify_ingest_quads_total")
	mIngestBatches = obs.C("lodify_ingest_batches_total")
	mIngestApply   = obs.H("lodify_ingest_batch_apply_seconds")
	gIngestWorkers = obs.G("lodify_ingest_parse_workers")
	// gIngestUtil is parse-worker utilization of the last chunked load,
	// in permille (gauges are integral).
	gIngestUtil = obs.G("lodify_ingest_parse_utilization_permille")
	gIngestRate = obs.G("lodify_ingest_rate_quads_per_second")
)

// geoPt is a parsed geo:geometry object staged for apply.
type geoPt struct {
	pt geo.Point
	ok bool
}

// shardScratch is one shard's reusable apply-phase state. The text
// postCache must be per shard: postings resolve against the shard's
// own text segment.
type shardScratch struct {
	// postCache maps a distinct literal-object id to its resolved
	// postings (one per token, carved from postSlab), so repeated
	// literals in a shard's slice of the batch hit the string-keyed
	// text index once.
	postCache map[TermID][]*posting
	postSlab  []*posting
	// addedQ collects this shard's applied quads for the commit hooks
	// (only populated while a hook is registered).
	addedQ []IDQuad
}

// BulkLoader ingests batches of quads with one lock acquisition per
// touched shard per batch. It is not safe for concurrent use (callers
// feed it from one goroutine — the chunked parser's emit callback
// already is); the store itself stays fully concurrent-safe for other
// readers/writers between and during batches. A batch is not applied
// atomically across shards: concurrent readers may observe one
// shard's slice of a batch before another's — bulk load promises
// final-state equivalence, not mid-load isolation (use Txn for that).
//
// Batch terms may alias parser chunk memory: everything the store
// retains is cloned at intern time, so no input buffer outlives the
// AddBatch call.
type BulkLoader struct {
	st    *Store
	added int

	// Scratch reused across batches: per-quad parallel arrays (resolved
	// ids, text tokens, parsed points) plus the sorted apply order.
	iquads   []iquad
	hashes   []uint64
	toks     [][]string
	geos     []geoPt
	order    []int32
	keys     []uint64
	tokCache map[TermID][]string

	// Per-shard apply state: the sorted order bucketed by shard, each
	// shard's text scratch, and each worker's added count.
	shardOrder [][]int32
	scratch    []shardScratch
	addedBy    []int
	// collect arms per-shard delta collection for the current batch; it
	// is sampled once per AddBatch so a hook registered mid-apply waits
	// for the next batch.
	collect bool
}

// NewBulkLoader returns a loader feeding st.
func (st *Store) NewBulkLoader() *BulkLoader {
	bl := &BulkLoader{
		st:         st,
		tokCache:   make(map[TermID][]string),
		shardOrder: make([][]int32, len(st.shards)),
		scratch:    make([]shardScratch, len(st.shards)),
		addedBy:    make([]int, len(st.shards)),
	}
	for i := range bl.scratch {
		bl.scratch[i].postCache = make(map[TermID][]*posting)
	}
	return bl
}

// Added returns the total number of quads this loader actually
// inserted (duplicates excluded).
func (bl *BulkLoader) Added() int { return bl.added }

// AddBatch ingests one batch. Every quad's triple component must be
// valid RDF; an invalid quad fails the whole batch before anything is
// applied. It returns the number of quads that were new to the store.
func (bl *BulkLoader) AddBatch(quads []rdf.Quad) (int, error) {
	if len(quads) == 0 {
		return 0, nil
	}
	for _, q := range quads {
		if err := q.Triple().Validate(); err != nil {
			return 0, err
		}
	}
	st := bl.st
	bl.iquads, bl.hashes = st.dict.internQuads(quads, bl.iquads, bl.hashes)

	// Precompute secondary-index work outside the lock. Repeated
	// literal objects (ratings, shared tags) tokenize once per batch.
	// Duplicates — in-batch or already stored — need no pre-filter
	// here: the index insert below rejects them in id space, and a
	// duplicate's staged tokens are simply never merged.
	clear(bl.tokCache)
	if cap(bl.toks) < len(quads) {
		bl.toks = make([][]string, len(quads))
		bl.geos = make([]geoPt, len(quads))
	} else {
		bl.toks = bl.toks[:len(quads)]
		bl.geos = bl.geos[:len(quads)]
		clear(bl.toks)
		clear(bl.geos)
	}
	for i, e := range bl.iquads {
		if q := quads[i]; q.O.IsLiteral() {
			toks, ok := bl.tokCache[e.o]
			if !ok {
				toks = Tokenize(q.O.Value())
				bl.tokCache[e.o] = toks
			}
			bl.toks[i] = toks
			if q.P.Value() == rdf.GeoGeometry {
				if pt, err := geo.ParseWKT(q.O.Value()); err == nil {
					bl.geos[i] = geoPt{pt: pt, ok: true}
				}
			}
		}
	}

	// Sort an index over the batch by (g, s) id — the store's final
	// state is order-independent within a batch (ids were assigned in
	// input order above, index postings are sorted sets, text refcounts
	// and geo inserts commute), and grouping by graph and subject is
	// what turns the lookups below into memo hits. When the ids fit —
	// any store under 16M terms whose graph terms landed in the first
	// 1M, i.e. essentially every bulk load — the key packs into a
	// uint64 with the batch index in the low bits, and a comparator-free
	// slices.Sort replaces the 4-field SortFunc.
	bl.order = bl.order[:0]
	var maxG, maxS TermID
	for _, e := range bl.iquads {
		maxG, maxS = max(maxG, e.g), max(maxS, e.s)
	}
	if maxG < 1<<20 && maxS < 1<<24 && len(bl.iquads) <= 1<<20 {
		keys := bl.keys[:0]
		for i, e := range bl.iquads {
			keys = append(keys, uint64(e.g)<<44|uint64(e.s)<<20|uint64(i))
		}
		slices.Sort(keys)
		bl.keys = keys
		for _, k := range keys {
			bl.order = append(bl.order, int32(k&(1<<20-1)))
		}
	} else {
		for i := range bl.iquads {
			bl.order = append(bl.order, int32(i))
		}
		slices.SortFunc(bl.order, func(a, b int32) int { return cmpIquad(bl.iquads[a], bl.iquads[b]) })
	}

	// Apply with one write-lock hold per touched shard. Sharding is by
	// the same (g, s) pair the sort grouped on, so bucketing the sorted
	// order by shard preserves each shard's (g, s) runs — graph and
	// subject-node lookups stay memoized across the runs, predicate and
	// object nodes via small rings; text postings resolve once per
	// distinct literal object per shard via that shard's postCache.
	start := time.Now()
	added := 0
	bl.collect = st.hooks.active()
	if len(st.shards) == 1 {
		added = bl.applyShard(st.shards[0], bl.order, &bl.scratch[0])
	} else {
		for i := range bl.shardOrder {
			bl.shardOrder[i] = bl.shardOrder[i][:0]
		}
		for _, idx := range bl.order {
			e := bl.iquads[idx]
			k := st.shardIndex(e.g, e.s)
			bl.shardOrder[k] = append(bl.shardOrder[k], idx)
		}
		// Shard applies are independent (disjoint index state, disjoint
		// scratch) and run concurrently — this is where ingest scales
		// across cores.
		var wg sync.WaitGroup
		for k := range st.shards {
			if len(bl.shardOrder[k]) == 0 {
				bl.addedBy[k] = 0
				continue
			}
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				bl.addedBy[k] = bl.applyShard(st.shards[k], bl.shardOrder[k], &bl.scratch[k])
			}(k)
		}
		wg.Wait()
		for _, n := range bl.addedBy {
			added += n
		}
	}
	st.size.Add(int64(added))
	if bl.collect {
		// Merge the per-shard delta slices and deliver one batch-level
		// notification, after every shard lock is back down.
		var quadsAdded []IDQuad
		for i := range bl.scratch {
			quadsAdded = append(quadsAdded, bl.scratch[i].addedQ...)
		}
		st.fireCommit(quadsAdded, nil)
	}

	mIngestApply.ObserveSince(start)
	mIngestBatches.Inc()
	mIngestQuads.Add(int64(len(quads)))
	mQuadsAdded.Add(int64(added))
	bl.added += added
	return added, nil
}

// applyShard applies one shard's slice of the sorted batch under that
// shard's write lock and returns how many quads were new. The slice
// preserves the batch's (g, s) sort order, so the same memoization as
// the single-lock apply holds per shard.
func (bl *BulkLoader) applyShard(sh *shard, idxs []int32, sc *shardScratch) int {
	clear(sc.postCache)
	sc.postSlab = sc.postSlab[:0]
	sc.addedQ = sc.addedQ[:0]
	sh.mu.Lock()
	added := 0
	var gi *graphIndex
	var spoNode *pairSet
	var posMemo, ospMemo nodeMemo
	gcur := AnyGraph // sentinel: AnyGraph is never a stored graph id
	scur := AnyGraph // likewise never a stored subject id
	for _, idx := range idxs {
		e := bl.iquads[idx]
		if gi == nil || e.g != gcur {
			var ok bool
			gi, ok = sh.graphs[e.g]
			if !ok {
				gi = newGraphIndex()
				sh.graphs[e.g] = gi
				sh.gids, _ = sh.gids.insert(e.g)
			}
			gcur, scur = e.g, AnyGraph
			posMemo.reset()
			ospMemo.reset()
		}
		if e.s != scur {
			spoNode = gi.spo.node(e.s, gi)
			scur = e.s
		}
		posN := posMemo.get(gi.pos, gi, e.p)
		ospN := ospMemo.get(gi.osp, gi, e.o)
		if !gi.addNodes(spoNode, posN, ospN, e.s, e.p, e.o) {
			continue // already stored: secondary indexes unchanged
		}
		sh.size++
		added++
		sh.statAdd(e.g, e.p, e.s, e.o)
		if bl.collect {
			sc.addedQ = append(sc.addedQ, IDQuad{S: e.s, P: e.p, O: e.o, G: e.g})
		}
		if toks := bl.toks[idx]; len(toks) > 0 {
			posts, ok := sc.postCache[e.o]
			if !ok {
				lo := len(sc.postSlab)
				sc.postSlab = sh.text.resolvePostings(sc.postSlab, toks)
				posts = sc.postSlab[lo:len(sc.postSlab):len(sc.postSlab)]
				sc.postCache[e.o] = posts
			}
			for _, p := range posts {
				p.add(e.s)
			}
		}
		if gp := bl.geos[idx]; gp.ok {
			sh.geo.Insert(uint64(e.s), gp.pt)
		}
	}
	if added > 0 {
		sh.epoch = bl.st.epoch.Add(1)
	}
	sh.mu.Unlock()
	return added
}
