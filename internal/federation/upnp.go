package federation

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"lodify/internal/ugc"
)

// §6.3: "UPnP-compatible home devices can directly communicate with
// the home network device through the UPnP media server: they will be
// able to browse for available content on the media server and
// request a file for playback. For example, a UPnP-compatible
// photoframe displaying a real-time slideshow...". This file
// implements that home-network layer: an SSDP-style discovery bus, a
// media server over the platform's content, and a photoframe device.

// Device types (mirroring UPnP device type URNs).
const (
	DeviceMediaServer = "urn:schemas-upnp-org:device:MediaServer:1"
	DevicePhotoframe  = "urn:schemas-upnp-org:device:Photoframe:1"
)

// Discovery is the in-process SSDP bus: devices register under a type
// and searchers enumerate them.
type Discovery struct {
	mu      sync.Mutex
	devices map[string]map[string]Device // type -> location -> device
}

// Device is anything discoverable on the home network.
type Device interface {
	DeviceType() string
	Location() string
}

// NewDiscovery returns an empty bus.
func NewDiscovery() *Discovery {
	return &Discovery{devices: map[string]map[string]Device{}}
}

// Register announces a device.
func (d *Discovery) Register(dev Device) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.devices[dev.DeviceType()]
	if !ok {
		m = map[string]Device{}
		d.devices[dev.DeviceType()] = m
	}
	m[dev.Location()] = dev
}

// Bye removes a device (ssdp:byebye).
func (d *Discovery) Bye(dev Device) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.devices[dev.DeviceType()]; ok {
		delete(m, dev.Location())
	}
}

// Search returns the devices of a type ("ssdp:all" for everything),
// sorted by location for determinism.
func (d *Discovery) Search(deviceType string) []Device {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Device
	if deviceType == "ssdp:all" {
		for _, m := range d.devices {
			for _, dev := range m {
				out = append(out, dev)
			}
		}
	} else {
		for _, dev := range d.devices[deviceType] {
			out = append(out, dev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Location() < out[j].Location() })
	return out
}

// MediaItem is one browsable entry of the media server.
type MediaItem struct {
	ID    int64
	Title string
	URL   string
	Kind  string // "photo" or "video"
	Owner string
}

// MediaServer exposes the platform's media over the home network
// (the NAS of §6.1 acting as UPnP media server).
type MediaServer struct {
	platform *ugc.Platform
	location string

	mu        sync.Mutex
	listeners []chan MediaItem
}

// NewMediaServer creates and registers a media server.
func NewMediaServer(p *ugc.Platform, location string, bus *Discovery) *MediaServer {
	ms := &MediaServer{platform: p, location: location}
	bus.Register(ms)
	return ms
}

// DeviceType implements Device.
func (ms *MediaServer) DeviceType() string { return DeviceMediaServer }

// Location implements Device.
func (ms *MediaServer) Location() string { return ms.location }

// Browse lists the available content, optionally filtered by owner
// ("" = everyone), sorted by ID.
func (ms *MediaServer) Browse(owner string) []MediaItem {
	var out []MediaItem
	for _, id := range ms.platform.Contents() {
		c, ok := ms.platform.Content(id)
		if !ok || (owner != "" && c.User != owner) {
			continue
		}
		out = append(out, MediaItem{
			ID: c.ID, Title: c.Title, URL: c.MediaURL, Kind: c.Kind, Owner: c.User,
		})
	}
	return out
}

// Fetch simulates requesting a file for playback: it returns a
// pseudo-stream descriptor for the URL, or an error for unknown
// content.
func (ms *MediaServer) Fetch(url string) (string, error) {
	for _, id := range ms.platform.Contents() {
		c, _ := ms.platform.Content(id)
		if c.MediaURL == url {
			return fmt.Sprintf("stream:%s:%s", c.Kind, url), nil
		}
	}
	return "", fmt.Errorf("federation: media %q not found", url)
}

// Subscribe returns a channel receiving items announced via Announce
// (UPnP eventing, GENA-style).
func (ms *MediaServer) Subscribe() <-chan MediaItem {
	ch := make(chan MediaItem, 64)
	ms.mu.Lock()
	ms.listeners = append(ms.listeners, ch)
	ms.mu.Unlock()
	return ch
}

// Announce notifies subscribers of new content (call after a
// platform publish; Node.PublishHome does this automatically).
func (ms *MediaServer) Announce(c *ugc.Content) {
	item := MediaItem{ID: c.ID, Title: c.Title, URL: c.MediaURL, Kind: c.Kind, Owner: c.User}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, ch := range ms.listeners {
		select {
		case ch <- item:
		default: // slow frame: drop rather than block the NAS
		}
	}
}

// Photoframe is the §6.3 example device: it discovers a media server
// and maintains a real-time slideshow of photos.
type Photoframe struct {
	location string
	capacity int

	mu     sync.Mutex
	slides []MediaItem
}

// NewPhotoframe creates and registers a photoframe holding up to
// capacity slides (oldest evicted).
func NewPhotoframe(location string, capacity int, bus *Discovery) *Photoframe {
	pf := &Photoframe{location: location, capacity: capacity}
	bus.Register(pf)
	return pf
}

// DeviceType implements Device.
func (pf *Photoframe) DeviceType() string { return DevicePhotoframe }

// Location implements Device.
func (pf *Photoframe) Location() string { return pf.location }

// Load fills the slideshow from a media server's current photos.
func (pf *Photoframe) Load(ms *MediaServer, owner string) {
	for _, item := range ms.Browse(owner) {
		if item.Kind == "photo" {
			pf.add(item)
		}
	}
}

// Watch consumes announcements until the channel closes — run it in a
// goroutine next to a MediaServer.Subscribe channel for the
// "real-time slideshow" of §6.3.
func (pf *Photoframe) Watch(ch <-chan MediaItem) {
	for item := range ch {
		if item.Kind == "photo" {
			pf.add(item)
		}
	}
}

func (pf *Photoframe) add(item MediaItem) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pf.slides = append(pf.slides, item)
	if pf.capacity > 0 && len(pf.slides) > pf.capacity {
		pf.slides = pf.slides[len(pf.slides)-pf.capacity:]
	}
}

// Slideshow returns the current slides, newest last.
func (pf *Photoframe) Slideshow() []MediaItem {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	out := make([]MediaItem, len(pf.slides))
	copy(out, pf.slides)
	return out
}

// String renders a short description for device listings.
func (pf *Photoframe) String() string {
	return strings.TrimPrefix(DevicePhotoframe, "urn:schemas-upnp-org:device:") + "@" + pf.location
}

// PublishHome publishes through the node (PuSH + SparqlPuSH included)
// and announces the content on the home media server.
func (n *Node) PublishHome(ctx context.Context, u ugc.Upload, ms *MediaServer) (*ugc.Content, error) {
	c, err := n.PublishContent(ctx, u)
	if err != nil {
		return nil, err
	}
	if ms != nil {
		ms.Announce(c)
	}
	return c, nil
}
