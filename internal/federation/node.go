package federation

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"lodify/internal/rdf"
	"lodify/internal/ugc"
)

// Activity is one ActivityStreams entry (§6.2: "a users' activities
// timeline in the ActivityStreams format").
type Activity struct {
	Actor     string    `json:"actor"`
	Verb      string    `json:"verb"`
	ObjectURL string    `json:"object"`
	Title     string    `json:"title,omitempty"`
	Published time.Time `json:"published"`
}

// Comment is a Salmon-delivered reply attached to a content item.
type Comment struct {
	Author  string // acct: URI of the commenter
	Content string
}

// Node is one federated social node: a platform plus the federation
// protocol endpoints, addressable by domain on a Network fabric.
type Node struct {
	Domain   string
	Platform *ugc.Platform
	Hub      *Hub

	mu         sync.Mutex
	activities []Activity
	comments   map[int64][]Comment
	net        *Network
	mux        *http.ServeMux
}

// NewNode creates a node and registers it on the fabric.
func NewNode(domain string, p *ugc.Platform, net *Network) *Node {
	n := &Node{
		Domain:   domain,
		Platform: p,
		net:      net,
		comments: map[int64][]Comment{},
		mux:      http.NewServeMux(),
	}
	n.Hub = NewHub(net.Client(), p.Store)
	n.mux.HandleFunc("/.well-known/webfinger", n.handleWebFinger)
	n.mux.HandleFunc("/users/", n.handleUsers)
	n.mux.Handle("/hub", n.Hub)
	n.mux.HandleFunc("/salmon/", n.handleSalmon)
	n.mux.HandleFunc("/oembed", n.handleOEmbed)
	net.Register(domain, n)
	return n
}

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// TopicURL is the node's content-feed topic for PuSH subscriptions.
func (n *Node) TopicURL() string {
	return httpURL(n.Domain, "/feed")
}

// httpURL assembles an endpoint URL on the fabric; URL assembly goes
// through net/url, IRI minting through internal/rdf (rawiri rule).
func httpURL(domain, path string) string {
	u := url.URL{Scheme: "http", Host: domain, Path: path}
	return u.String()
}

// PublishContent publishes through the platform, records the
// activity, pushes to PuSH subscribers and re-runs the SparqlPuSH
// subscriptions.
func (n *Node) PublishContent(ctx context.Context, u ugc.Upload) (*ugc.Content, error) {
	c, err := n.Platform.Publish(u)
	if err != nil {
		return nil, err
	}
	act := Activity{
		Actor:     "acct:" + u.User + "@" + n.Domain,
		Verb:      "post",
		ObjectURL: c.MediaURL,
		Title:     c.Title,
		Published: u.TakenAt,
	}
	n.mu.Lock()
	n.activities = append(n.activities, act)
	n.mu.Unlock()
	payload, err := json.Marshal(act)
	if err != nil {
		return nil, err
	}
	n.Hub.Publish(ctx, n.TopicURL(), payload)
	n.Hub.NotifySPARQL(ctx)
	return c, nil
}

// Comments returns the Salmon replies received for a content item.
func (n *Node) Comments(contentID int64) []Comment {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Comment, len(n.comments[contentID]))
	copy(out, n.comments[contentID])
	return out
}

// ---- WebFinger (§6.2: identification of users across networks) ----

type jrd struct {
	Subject string    `json:"subject"`
	Links   []jrdLink `json:"links"`
}

type jrdLink struct {
	Rel  string `json:"rel"`
	Type string `json:"type,omitempty"`
	Href string `json:"href"`
}

func (n *Node) handleWebFinger(w http.ResponseWriter, r *http.Request) {
	resource := r.URL.Query().Get("resource")
	const acct = "acct:"
	if !strings.HasPrefix(resource, acct) {
		http.Error(w, "resource must be an acct: URI", http.StatusBadRequest)
		return
	}
	rest := resource[len(acct):]
	at := strings.LastIndex(rest, "@")
	if at < 0 || rest[at+1:] != n.Domain {
		http.Error(w, "wrong domain", http.StatusNotFound)
		return
	}
	user := rest[:at]
	if _, ok := n.Platform.User(user); !ok {
		http.Error(w, "no such user", http.StatusNotFound)
		return
	}
	doc := jrd{
		Subject: resource,
		Links: []jrdLink{
			{Rel: "http://webfinger.net/rel/profile-page", Href: httpURL(n.Domain, "/users/"+user)},
			{Rel: "describedby", Type: "text/turtle", Href: httpURL(n.Domain, "/users/"+user+"/foaf")},
			{Rel: "http://schemas.google.com/g/2010#updates-from", Href: httpURL(n.Domain, "/users/"+user+"/activities")},
			{Rel: "salmon", Href: httpURL(n.Domain, "/salmon/"+user)},
			{Rel: "hub", Href: httpURL(n.Domain, "/hub")},
		},
	}
	w.Header().Set("Content-Type", "application/jrd+json")
	json.NewEncoder(w).Encode(doc)
}

// ---- Users: profile, FOAF, activities ----

func (n *Node) handleUsers(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/users/")
	parts := strings.Split(rest, "/")
	user := parts[0]
	u, ok := n.Platform.User(user)
	if !ok {
		http.Error(w, "no such user", http.StatusNotFound)
		return
	}
	sub := ""
	if len(parts) > 1 {
		sub = parts[1]
	}
	switch sub {
	case "":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><body><h1>%s</h1><p>%s</p></body></html>", user, u.FullName)
	case "foaf":
		n.writeFOAF(w, u)
	case "activities":
		n.mu.Lock()
		var acts []Activity
		prefix := "acct:" + user + "@"
		for _, a := range n.activities {
			if strings.HasPrefix(a.Actor, prefix) {
				acts = append(acts, a)
			}
		}
		n.mu.Unlock()
		sort.Slice(acts, func(i, j int) bool { return acts[i].Published.After(acts[j].Published) })
		w.Header().Set("Content-Type", "application/stream+json")
		json.NewEncoder(w).Encode(map[string]any{"items": acts})
	default:
		http.NotFound(w, r)
	}
}

// writeFOAF renders the user's profile and relationships as Turtle
// (§6.2: "profile data sharing and relationships with other networks,
// implemented with FOAF").
func (n *Node) writeFOAF(w http.ResponseWriter, u *ugc.User) {
	g := rdf.NewGraph()
	me := rdf.NewIRI("http://" + n.Domain + "/users/" + u.Name + "#me")
	foaf := func(l string) rdf.Term { return rdf.NewIRI("http://xmlns.com/foaf/0.1/" + l) }
	g.Add(rdf.NewTriple(me, rdf.NewIRI(rdf.RDFType), foaf("Person")))
	g.Add(rdf.NewTriple(me, foaf("nick"), rdf.NewLiteral(u.Name)))
	if u.FullName != "" {
		g.Add(rdf.NewTriple(me, foaf("name"), rdf.NewLiteral(u.FullName)))
	}
	g.Add(rdf.NewTriple(me, foaf("account"), rdf.NewLiteral("acct:"+u.Name+"@"+n.Domain)))
	for _, f := range n.Platform.Friends(u.Name) {
		g.Add(rdf.NewTriple(me, foaf("knows"), rdf.NewIRI("http://"+n.Domain+"/users/"+f+"#me")))
	}
	w.Header().Set("Content-Type", "text/turtle")
	pm := rdf.NewPrefixMap()
	pm.Set("foaf", "http://xmlns.com/foaf/0.1/")
	rdf.WriteTurtle(w, g.Sorted(), pm)
}

// ---- Salmon (§6.2: comment and annotate original sources) ----

func (n *Node) handleSalmon(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	user := strings.TrimPrefix(r.URL.Path, "/salmon/")
	if _, ok := n.Platform.User(user); !ok {
		http.Error(w, "no such user", http.StatusNotFound)
		return
	}
	var sal struct {
		Author  string `json:"author"`
		Content string `json:"content"`
		Target  int64  `json:"target"` // content ID
	}
	if err := json.NewDecoder(r.Body).Decode(&sal); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, ok := n.Platform.Content(sal.Target); !ok {
		http.Error(w, "no such content", http.StatusNotFound)
		return
	}
	n.mu.Lock()
	n.comments[sal.Target] = append(n.comments[sal.Target], Comment{Author: sal.Author, Content: sal.Content})
	n.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
}

// ---- OEmbed (§6.2: multimedia content sharing) ----

func (n *Node) handleOEmbed(w http.ResponseWriter, r *http.Request) {
	target := r.URL.Query().Get("url")
	if target == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	for _, id := range n.Platform.Contents() {
		c, _ := n.Platform.Content(id)
		if c.MediaURL == target {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"version": "1.0", "type": "photo",
				"url": c.MediaURL, "title": c.Title,
				"author_name": c.User, "provider_name": n.Domain,
				"width": 800, "height": 600,
			})
			return
		}
	}
	http.Error(w, "unknown content", http.StatusNotFound)
}

// ---- client-side helpers ----

// Finger performs WebFinger discovery for acct:user@domain over the
// fabric.
func Finger(ctx context.Context, client *http.Client, acct string) (map[string]string, error) {
	if !strings.HasPrefix(acct, "acct:") {
		acct = "acct:" + acct
	}
	at := strings.LastIndex(acct, "@")
	if at < 0 {
		return nil, fmt.Errorf("federation: malformed account %q", acct)
	}
	domain := acct[at+1:]
	endpoint := url.URL{
		Scheme:   "http",
		Host:     domain,
		Path:     "/.well-known/webfinger",
		RawQuery: "resource=" + url.QueryEscape(acct),
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("federation: webfinger %d: %s", resp.StatusCode, body)
	}
	var doc jrd
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, l := range doc.Links {
		out[l.Rel] = l.Href
	}
	return out, nil
}

// SendSalmon posts a reply to a remote user's content.
func SendSalmon(ctx context.Context, client *http.Client, salmonURL, author, content string, target int64) error {
	body, err := json.Marshal(map[string]any{"author": author, "content": content, "target": target})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, salmonURL, strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("federation: salmon rejected: %d", resp.StatusCode)
	}
	return nil
}

// SubscribeRemote subscribes callbackURL to a remote node's topic via
// its hub.
func SubscribeRemote(ctx context.Context, client *http.Client, hubURL, topic, callbackURL string) error {
	form := url.Values{}
	form.Set("hub.mode", "subscribe")
	form.Set("hub.topic", topic)
	form.Set("hub.callback", callbackURL)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hubURL, strings.NewReader(form.Encode()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("federation: subscribe rejected: %d %s", resp.StatusCode, body)
	}
	return nil
}
