package federation

import (
	"context"
	"testing"
	"time"

	"lodify/internal/ugc"
)

func homeSetup(t *testing.T) (*Node, *MediaServer, *Discovery) {
	net := NewNetwork()
	p := newPlatform(t)
	p.Register("alice", "Alice A", "")
	node := NewNode("alice.example", p, net)
	bus := NewDiscovery()
	ms := NewMediaServer(p, "http://192.168.1.10:8200/", bus)
	return node, ms, bus
}

func TestDiscoverySearch(t *testing.T) {
	_, ms, bus := homeSetup(t)
	pf := NewPhotoframe("http://192.168.1.20/", 10, bus)

	servers := bus.Search(DeviceMediaServer)
	if len(servers) != 1 || servers[0].Location() != ms.Location() {
		t.Fatalf("servers = %v", servers)
	}
	frames := bus.Search(DevicePhotoframe)
	if len(frames) != 1 {
		t.Fatalf("frames = %v", frames)
	}
	all := bus.Search("ssdp:all")
	if len(all) != 2 {
		t.Fatalf("all = %v", all)
	}
	bus.Bye(pf)
	if got := bus.Search(DevicePhotoframe); len(got) != 0 {
		t.Fatalf("after bye = %v", got)
	}
}

func TestMediaServerBrowseAndFetch(t *testing.T) {
	node, ms, _ := homeSetup(t)
	node.Platform.Register("bob", "", "")
	c1, _ := node.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "a.jpg", Title: "A", TakenAt: now})
	node.PublishContent(context.Background(), ugc.Upload{User: "bob", Filename: "b.jpg", Title: "B", TakenAt: now})

	all := ms.Browse("")
	if len(all) != 2 {
		t.Fatalf("browse all = %v", all)
	}
	mine := ms.Browse("alice")
	if len(mine) != 1 || mine[0].Owner != "alice" {
		t.Fatalf("browse alice = %v", mine)
	}
	stream, err := ms.Fetch(c1.MediaURL)
	if err != nil || stream != "stream:photo:"+c1.MediaURL {
		t.Fatalf("fetch = %q, %v", stream, err)
	}
	if _, err := ms.Fetch("http://nope"); err == nil {
		t.Fatal("unknown media fetched")
	}
}

func TestPhotoframeRealtimeSlideshow(t *testing.T) {
	// §6.3: the photoframe shows a real-time slideshow of content a
	// family member takes during their holidays.
	node, ms, bus := homeSetup(t)
	pf := NewPhotoframe("http://192.168.1.20/", 3, bus)

	// Preload existing photos.
	node.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "old.jpg", Title: "old", TakenAt: now})
	pf.Load(ms, "alice")
	if got := pf.Slideshow(); len(got) != 1 || got[0].Title != "old" {
		t.Fatalf("preload = %v", got)
	}

	// Live updates.
	ch := ms.Subscribe()
	go pf.Watch(ch)
	for i := 0; i < 4; i++ {
		_, err := node.PublishHome(context.Background(), ugc.Upload{
			User: "alice", Filename: time.Now().Format("150405.000") + "-live.jpg",
			Title: "holiday", TakenAt: now.Add(time.Duration(i) * time.Minute),
		}, ms)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Channel is unbuffered from the announce side? It's buffered; to
	// finish the watcher, close via a new announce path: just wait
	// until the frame saw everything.
	deadline := time.After(2 * time.Second)
	for {
		if len(pf.Slideshow()) == 3 { // capacity 3, oldest evicted
			break
		}
		select {
		case <-deadline:
			t.Fatalf("slideshow = %v", pf.Slideshow())
		case <-time.After(5 * time.Millisecond):
		}
	}
	slides := pf.Slideshow()
	if len(slides) != 3 {
		t.Fatalf("capacity not enforced: %v", slides)
	}
	for _, s := range slides {
		if s.Title != "holiday" {
			t.Fatalf("old slide not evicted: %v", slides)
		}
	}
	_ = pf.String()
}

func TestPhotoframeIgnoresVideos(t *testing.T) {
	node, ms, bus := homeSetup(t)
	pf := NewPhotoframe("http://192.168.1.21/", 10, bus)
	node.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "v.mp4", Kind: "video", Title: "V", TakenAt: now})
	node.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "p.jpg", Title: "P", TakenAt: now})
	pf.Load(ms, "alice")
	slides := pf.Slideshow()
	if len(slides) != 1 || slides[0].Kind != "photo" {
		t.Fatalf("slides = %v", slides)
	}
}
