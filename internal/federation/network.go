// Package federation implements the paper's target architecture (§6):
// a federation of interconnected social nodes, each hosting its own
// platform — WebFinger identity discovery, FOAF profile sharing,
// ActivityStreams timelines, PubSubHubbub push notifications with
// SparqlPuSH-style semantic subscriptions, Salmon replies and OEmbed
// content embedding. Nodes exchange real HTTP requests over an
// in-process network fabric, standing in for home NAS devices behind
// DDNS names.
package federation

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
)

// Network is the in-process fabric: domain names route to node
// handlers without sockets, so a whole federation runs in one test
// process (the "home network device" of §6.1 is a handler here).
type Network struct {
	mu    sync.RWMutex
	nodes map[string]http.Handler
}

// NewNetwork returns an empty fabric.
func NewNetwork() *Network {
	return &Network{nodes: map[string]http.Handler{}}
}

// Register attaches a handler to a domain name.
func (n *Network) Register(domain string, h http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[domain] = h
}

// RoundTrip implements http.RoundTripper by dispatching to the
// registered handler for the request's host.
func (n *Network) RoundTrip(req *http.Request) (*http.Response, error) {
	n.mu.RLock()
	h, ok := n.nodes[req.URL.Host]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("federation: unknown host %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// Client returns an HTTP client routed through the fabric.
func (n *Network) Client() *http.Client {
	return &http.Client{Transport: n}
}
