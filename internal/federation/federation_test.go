package federation

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lodify/internal/annotate"
	"lodify/internal/ctxmgr"
	"lodify/internal/geo"
	"lodify/internal/lod"
	"lodify/internal/resolver"
	"lodify/internal/ugc"
)

var (
	molePt = geo.Point{Lon: 7.6934, Lat: 45.0690}
	now    = time.Date(2011, 9, 17, 18, 0, 0, 0, time.UTC)
)

func newPlatform(t testing.TB) *ugc.Platform {
	w := lod.Generate(lod.DefaultConfig())
	ctx := ctxmgr.New(w)
	pipe := annotate.NewPipeline(w.Store, resolver.DefaultBroker(w.Store), annotate.DefaultConfig())
	return ugc.New(w.Store, ctx, pipe, ugc.Options{})
}

// twoNodes builds alice.example and bob.example on one fabric.
func twoNodes(t *testing.T) (*Network, *Node, *Node) {
	net := NewNetwork()
	pa := newPlatform(t)
	pa.Register("alice", "Alice A", "")
	pb := newPlatform(t)
	pb.Register("bob", "Bob B", "")
	a := NewNode("alice.example", pa, net)
	b := NewNode("bob.example", pb, net)
	return net, a, b
}

// callbackSink records push deliveries and answers PuSH verification
// challenges.
type callbackSink struct {
	mu       sync.Mutex
	payloads []string
}

func (s *callbackSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		// Echo the verification challenge.
		io.WriteString(w, r.URL.Query().Get("hub.challenge"))
		return
	}
	body, _ := io.ReadAll(r.Body)
	s.mu.Lock()
	s.payloads = append(s.payloads, string(body))
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (s *callbackSink) all() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.payloads...)
}

func TestWebFingerDiscovery(t *testing.T) {
	net, _, _ := twoNodes(t)
	links, err := Finger(context.Background(), net.Client(), "alice@alice.example")
	if err != nil {
		t.Fatal(err)
	}
	if links["salmon"] != "http://alice.example/salmon/alice" {
		t.Fatalf("links = %v", links)
	}
	if links["hub"] == "" || links["describedby"] == "" {
		t.Fatalf("links = %v", links)
	}
	// Unknown user and wrong domain fail.
	if _, err := Finger(context.Background(), net.Client(), "ghost@alice.example"); err == nil {
		t.Fatal("ghost resolved")
	}
	if _, err := Finger(context.Background(), net.Client(), "alice@nowhere.example"); err == nil {
		t.Fatal("unknown host resolved")
	}
}

func TestFOAFProfileSharing(t *testing.T) {
	net, a, _ := twoNodes(t)
	a.Platform.Register("carol", "Carol C", "")
	a.Platform.AddFriend("alice", "carol")
	resp, err := net.Client().Get("http://alice.example/users/alice/foaf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	s := string(body)
	if !strings.Contains(s, "foaf:knows") || !strings.Contains(s, "carol#me") {
		t.Fatalf("foaf = %s", s)
	}
	if resp.Header.Get("Content-Type") != "text/turtle" {
		t.Fatalf("content type = %s", resp.Header.Get("Content-Type"))
	}
}

func TestActivityStreamsTimeline(t *testing.T) {
	net, a, _ := twoNodes(t)
	a.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "1.jpg", Title: "first", TakenAt: now})
	a.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "2.jpg", Title: "second", TakenAt: now.Add(time.Hour)})
	resp, err := net.Client().Get("http://alice.example/users/alice/activities")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Items []Activity `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Items) != 2 {
		t.Fatalf("items = %+v", doc.Items)
	}
	// Newest first.
	if doc.Items[0].Title != "second" {
		t.Fatalf("order = %+v", doc.Items)
	}
	if doc.Items[0].Verb != "post" || doc.Items[0].Actor != "acct:alice@alice.example" {
		t.Fatalf("activity = %+v", doc.Items[0])
	}
}

func TestPubSubHubbubPushOnPublish(t *testing.T) {
	net, a, _ := twoNodes(t)
	sink := &callbackSink{}
	net.Register("sink.example", sink)

	err := SubscribeRemote(context.Background(), net.Client(), "http://alice.example/hub", a.TopicURL(), "http://sink.example/cb")
	if err != nil {
		t.Fatal(err)
	}
	a.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "x.jpg", Title: "pushed", TakenAt: now})
	got := sink.all()
	if len(got) != 1 {
		t.Fatalf("deliveries = %v", got)
	}
	var act Activity
	if err := json.Unmarshal([]byte(got[0]), &act); err != nil {
		t.Fatal(err)
	}
	if act.Title != "pushed" {
		t.Fatalf("activity = %+v", act)
	}
}

func TestPuSHSubscriptionVerificationFailure(t *testing.T) {
	net, a, _ := twoNodes(t)
	// A callback that refuses the challenge is never subscribed.
	net.Register("bad.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	err := SubscribeRemote(context.Background(), net.Client(), "http://alice.example/hub", a.TopicURL(), "http://bad.example/cb")
	if err == nil {
		t.Fatal("unverified callback subscribed")
	}
}

func TestUnsubscribeStopsDeliveries(t *testing.T) {
	net, a, _ := twoNodes(t)
	sink := &callbackSink{}
	net.Register("sink.example", sink)
	SubscribeRemote(context.Background(), net.Client(), "http://alice.example/hub", a.TopicURL(), "http://sink.example/cb")
	a.Hub.Unsubscribe(a.TopicURL(), "http://sink.example/cb")
	a.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "x.jpg", TakenAt: now})
	if got := sink.all(); len(got) != 0 {
		t.Fatalf("deliveries after unsubscribe = %v", got)
	}
}

func TestSparqlPushNotification(t *testing.T) {
	net, a, _ := twoNodes(t)
	sink := &callbackSink{}
	net.Register("sink.example", sink)

	// Semantic subscription: any new MicroblogPost near the Mole.
	query := `
PREFIX sioct: <http://rdfs.org/sioc/types#>
PREFIX comm: <http://comm.semanticweb.org/core.owl#>
SELECT ?link WHERE { ?r a sioct:MicroblogPost . ?r comm:image-data ?link . }`
	if err := a.Hub.SubscribeSPARQL(query, "http://sink.example/sparql"); err != nil {
		t.Fatal(err)
	}
	if err := a.Hub.SubscribeSPARQL("not sparql", "http://sink.example/x"); err == nil {
		t.Fatal("bad query subscribed")
	}

	a.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "m.jpg", Title: "Mole", GPS: &molePt, TakenAt: now})
	first := sink.all()
	if len(first) != 1 || !strings.Contains(first[0], "m.jpg") {
		t.Fatalf("sparqlpush = %v", first)
	}
	// Publishing again notifies only the new solution.
	a.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "n.jpg", Title: "Mole again", GPS: &molePt, TakenAt: now})
	second := sink.all()
	if len(second) != 2 {
		t.Fatalf("deliveries = %v", second)
	}
	if strings.Contains(second[1], "m.jpg") {
		t.Fatalf("old solution re-notified: %v", second[1])
	}
}

func TestSalmonReplyAcrossNodes(t *testing.T) {
	net, a, _ := twoNodes(t)
	c, err := a.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "x.jpg", Title: "hello", TakenAt: now})
	if err != nil {
		t.Fatal(err)
	}
	// bob discovers alice via WebFinger, then sends a Salmon reply.
	links, err := Finger(context.Background(), net.Client(), "alice@alice.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := SendSalmon(context.Background(), net.Client(), links["salmon"], "acct:bob@bob.example", "nice shot!", c.ID); err != nil {
		t.Fatal(err)
	}
	comments := a.Comments(c.ID)
	if len(comments) != 1 || comments[0].Author != "acct:bob@bob.example" {
		t.Fatalf("comments = %+v", comments)
	}
	// Salmon to a missing content 404s.
	if err := SendSalmon(context.Background(), net.Client(), links["salmon"], "acct:bob@bob.example", "x", 999); err == nil {
		t.Fatal("salmon to missing content accepted")
	}
}

func TestOEmbed(t *testing.T) {
	net, a, _ := twoNodes(t)
	c, _ := a.PublishContent(context.Background(), ugc.Upload{User: "alice", Filename: "p.jpg", Title: "photo", TakenAt: now})
	resp, err := net.Client().Get("http://alice.example/oembed?url=" + c.MediaURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["type"] != "photo" || doc["title"] != "photo" || doc["provider_name"] != "alice.example" {
		t.Fatalf("oembed = %v", doc)
	}
	resp2, _ := net.Client().Get("http://alice.example/oembed?url=http://nope")
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown url code = %d", resp2.StatusCode)
	}
}

func TestNetworkUnknownHost(t *testing.T) {
	net := NewNetwork()
	if _, err := net.Client().Get("http://ghost.example/"); err == nil {
		t.Fatal("unknown host reachable")
	}
}
