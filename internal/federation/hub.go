package federation

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"lodify/internal/obs"
	"lodify/internal/sparql"
	"lodify/internal/store"
)

// Hub delivery metrics: how long a publish takes to reach each
// subscriber (the paper's "near-instant notification" claim, §6.2)
// and how SparqlPuSH re-evaluations fan out.
var (
	mDeliverySeconds = obs.H("lodify_federation_delivery_seconds")
	mDeliveries      = obs.C("lodify_federation_deliveries_total", "result", "ok")
	mDeliveryErrs    = obs.C("lodify_federation_deliveries_total", "result", "error")
	mSparqlPushes    = obs.C("lodify_federation_sparql_pushes_total")
	mSparqlFresh     = obs.C("lodify_federation_sparql_fresh_solutions_total")
)

// Hub is a PubSubHubbub hub with an extension for SparqlPuSH-style
// semantic subscriptions: a subscriber may register a SPARQL query as
// its topic; whenever the node publishes, the hub re-runs the query
// and pushes fresh results ("proactive notification of data updates
// in RDF stores using PubSubHubbub", the paper's [10]).
type Hub struct {
	mu     sync.Mutex
	client *http.Client
	subs   map[string][]subscription // topic -> subscriptions
	sparql []*sparqlSub
	st     *store.Store
}

type subscription struct {
	callback string
}

type sparqlSub struct {
	query    string
	callback string
	seen     map[string]bool
}

// NewHub returns a hub delivering over the given client.
func NewHub(client *http.Client, st *store.Store) *Hub {
	return &Hub{client: client, subs: map[string][]subscription{}, st: st}
}

// ServeHTTP implements the hub endpoint: application/x-www-form-
// urlencoded POSTs with hub.mode=subscribe|unsubscribe|publish.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	mode := r.Form.Get("hub.mode")
	topic := r.Form.Get("hub.topic")
	callback := r.Form.Get("hub.callback")
	switch mode {
	case "subscribe":
		if topic == "" || callback == "" {
			http.Error(w, "topic and callback required", http.StatusBadRequest)
			return
		}
		if err := h.Subscribe(r.Context(), topic, callback); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	case "unsubscribe":
		h.Unsubscribe(topic, callback)
		w.WriteHeader(http.StatusAccepted)
	case "publish":
		body, _ := io.ReadAll(r.Body)
		h.Publish(r.Context(), topic, body)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "unknown hub.mode", http.StatusBadRequest)
	}
}

// Subscribe verifies the callback with a challenge (per the PuSH
// spec) and registers it. The context bounds the verification round
// trip.
func (h *Hub) Subscribe(ctx context.Context, topic, callback string) error {
	challenge := fmt.Sprintf("ch-%d", len(callback)*7919+len(topic))
	u, err := url.Parse(callback)
	if err != nil {
		return fmt.Errorf("federation: bad callback: %w", err)
	}
	q := u.Query()
	q.Set("hub.mode", "subscribe")
	q.Set("hub.topic", topic)
	q.Set("hub.challenge", challenge)
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return fmt.Errorf("federation: bad callback: %w", err)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return fmt.Errorf("federation: callback verification failed: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), challenge) {
		return fmt.Errorf("federation: callback did not echo challenge")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs[topic] {
		if s.callback == callback {
			return nil
		}
	}
	h.subs[topic] = append(h.subs[topic], subscription{callback: callback})
	return nil
}

// Unsubscribe removes a callback.
func (h *Hub) Unsubscribe(topic, callback string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	subs := h.subs[topic]
	for i, s := range subs {
		if s.callback == callback {
			h.subs[topic] = append(subs[:i], subs[i+1:]...)
			return
		}
	}
}

// SubscribeSPARQL registers a SparqlPuSH semantic subscription: the
// callback receives the new rows every time NotifySPARQL runs and the
// query yields solutions it has not delivered before.
func (h *Hub) SubscribeSPARQL(query, callback string) error {
	if _, err := sparql.Parse(query); err != nil {
		return fmt.Errorf("federation: bad sparql subscription: %w", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sparql = append(h.sparql, &sparqlSub{query: query, callback: callback, seen: map[string]bool{}})
	return nil
}

// Publish pushes the payload to every subscriber of the topic
// synchronously ("near-instant notifications", §6.2). The context
// bounds every delivery.
func (h *Hub) Publish(ctx context.Context, topic string, payload []byte) {
	ctx, sp := obs.StartSpan(ctx, "federation.publish")
	defer sp.End(ctx)
	h.mu.Lock()
	subs := append([]subscription(nil), h.subs[topic]...)
	h.mu.Unlock()
	for _, s := range subs {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.callback, bytes.NewReader(payload))
		if err != nil {
			mDeliveryErrs.Inc()
			continue
		}
		req.Header.Set("Content-Type", "application/atom+xml")
		req.Header.Set("X-Hub-Topic", topic)
		req.Header.Set(obs.TraceHeader, sp.TraceID)
		start := time.Now()
		if resp, err := h.client.Do(req); err == nil {
			resp.Body.Close()
			mDeliverySeconds.ObserveSince(start)
			mDeliveries.Inc()
		} else {
			mDeliveryErrs.Inc()
		}
	}
}

// NotifySPARQL re-evaluates the semantic subscriptions against the
// node's store and pushes fresh solutions.
func (h *Hub) NotifySPARQL(ctx context.Context) {
	if h.st == nil {
		return
	}
	ctx, sp := obs.StartSpan(ctx, "federation.notify_sparql")
	defer sp.End(ctx)
	engine := sparql.NewEngine(h.st)
	h.mu.Lock()
	subs := append([]*sparqlSub(nil), h.sparql...)
	h.mu.Unlock()
	for _, sub := range subs {
		res, err := engine.Query(sub.query)
		if err != nil {
			continue
		}
		var fresh []string
		h.mu.Lock()
		for _, sol := range res.Solutions {
			key := solKey(sol, res.Vars)
			if !sub.seen[key] {
				sub.seen[key] = true
				fresh = append(fresh, key)
			}
		}
		h.mu.Unlock()
		if len(fresh) == 0 {
			continue
		}
		mSparqlFresh.Add(int64(len(fresh)))
		payload := strings.Join(fresh, "\n")
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, sub.callback, strings.NewReader(payload))
		if err != nil {
			mDeliveryErrs.Inc()
			continue
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set("X-SparqlPush", "update")
		req.Header.Set(obs.TraceHeader, sp.TraceID)
		start := time.Now()
		if resp, err := h.client.Do(req); err == nil {
			resp.Body.Close()
			mDeliverySeconds.ObserveSince(start)
			mSparqlPushes.Inc()
		} else {
			mDeliveryErrs.Inc()
		}
	}
}

func solKey(sol sparql.Solution, vars []string) string {
	var b strings.Builder
	for _, v := range vars {
		if t, ok := sol[v]; ok {
			b.WriteString(t.String())
		}
		b.WriteString(" ")
	}
	return strings.TrimSpace(b.String())
}
