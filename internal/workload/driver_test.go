package workload_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"lodify/internal/annotate"
	"lodify/internal/ctxmgr"
	"lodify/internal/lod"
	"lodify/internal/resolver"
	"lodify/internal/ugc"
	"lodify/internal/web"
	"lodify/internal/workload"
)

// The driver test lives in an external test package: workload is
// imported by web's dependents' benchmarks, while the driver drives a
// web.Server — the _test package keeps the production import graph
// acyclic-by-construction.

func TestDriverClosedLoop(t *testing.T) {
	w := lod.Generate(lod.DefaultConfig())
	ctx := ctxmgr.New(w)
	pipe := annotate.NewPipeline(w.Store, resolver.DefaultBroker(w.Store), annotate.DefaultConfig())
	p := ugc.New(w.Store, ctx, pipe, ugc.Options{})
	corpus, err := workload.Generate(p, w, workload.Spec{
		Users: 4, Contents: 20, FriendsPerUser: 2, RatedFraction: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(web.NewServer(p))
	defer ts.Close()

	// Past the evaluator's 1s sampling gap: a shorter loop would read
	// the memoized first sample (zero events) back from /api/stats.
	rep, err := workload.RunDriver(workload.DriverSpec{
		BaseURL:     ts.URL,
		Duration:    1200 * time.Millisecond,
		Readers:     2,
		Uploaders:   1,
		Seed:        1,
		UploadUsers: corpus.Users,
	})
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]workload.OpStat{}
	for _, op := range rep.Ops {
		byOp[op.Op] = op
		if op.Errors > 0 {
			t.Errorf("op %s saw %d errors", op.Op, op.Errors)
		}
	}
	total := int64(0)
	for _, op := range byOp {
		total += op.Count
	}
	if total == 0 {
		t.Fatal("driver issued no requests")
	}
	if byOp["upload"].Count == 0 {
		t.Fatal("uploader idle: reads were not measured under ingest")
	}
	// The server's own SLO verdicts come back with the report.
	if len(rep.SLO) == 0 {
		t.Fatal("no SLO status scraped from /api/stats")
	}
	for _, st := range rep.SLO {
		if st.Name == "http-errors" && st.Unattainable {
			t.Fatalf("http-errors objective saw no events: %+v", st)
		}
	}
}

func TestDriverUnreachableTarget(t *testing.T) {
	_, err := workload.RunDriver(workload.DriverSpec{
		BaseURL:  "http://127.0.0.1:1",
		Duration: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("unreachable target must fail fast")
	}
}
