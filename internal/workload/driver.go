package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lodify/internal/obs"
)

// HTTP driver: a closed-loop load generator against a live lodify
// server. Reader workers issue the paper's retrieval mix — keyword
// album feeds, incremental AJAX searches and SPARQL queries — while
// uploader workers publish new contents through /api/upload, so the
// read latencies are measured under concurrent ingest (writer
// contention on the store lock shows up as lease wait in the profile
// trees). After the run the driver turns around and reads the
// server's own observability surfaces: SLO verdicts from /api/stats
// and per-operator totals from /metrics.

// DriverSpec parameterizes one driver run.
type DriverSpec struct {
	// BaseURL of the target server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Duration of the closed loop.
	Duration time.Duration
	// Readers is the number of closed-loop read workers (default 4).
	Readers int
	// Uploaders is the number of concurrent upload workers (default 1;
	// 0 disables ingest).
	Uploaders int
	Seed      int64
	// Keywords feed the /feeds/keyword/<kw> album reads.
	Keywords []string
	// SearchTerms feed /api/search?q= (each term is typed
	// incrementally, like the E4 AJAX client).
	SearchTerms []string
	// Queries is the SPARQL mix for /sparql.
	Queries []string
	// UploadUsers own the uploaded contents; they must be registered
	// on the target (the synthetic corpus registers user00, user01...).
	UploadUsers []string
	Client      *http.Client
}

func (s *DriverSpec) defaults() {
	if s.Duration <= 0 {
		s.Duration = 2 * time.Second
	}
	if s.Readers <= 0 {
		s.Readers = 4
	}
	if s.Uploaders < 0 {
		s.Uploaders = 0
	}
	if len(s.Keywords) == 0 {
		s.Keywords = []string{"turin", "paris"}
	}
	if len(s.SearchTerms) == 0 {
		s.SearchTerms = []string{"Turin", "Paris"}
	}
	if len(s.Queries) == 0 {
		s.Queries = []string{"ASK { ?s ?p ?o }"}
	}
	if len(s.UploadUsers) == 0 {
		s.UploadUsers = []string{"user00", "user01"}
	}
	if s.Client == nil {
		s.Client = &http.Client{Timeout: 30 * time.Second}
	}
}

// OpStat is the client-side latency digest of one operation class.
type OpStat struct {
	Op     string `json:"op"`
	Count  int64  `json:"count"`
	Errors int64  `json:"errors"`
	P50Ns  int64  `json:"p50Ns"`
	P95Ns  int64  `json:"p95Ns"`
	P99Ns  int64  `json:"p99Ns"`
	MaxNs  int64  `json:"maxNs"`
}

// OpTotal is one per-operator total scraped from the server's
// lodify_sparql_op_* series: cumulative self-time and output rows of
// one plan-operator kind across every profiled query.
type OpTotal struct {
	Op    string  `json:"op"`
	Nanos float64 `json:"nanos"`
	Rows  float64 `json:"rows"`
}

// DriverReport is the outcome of a driver run.
type DriverReport struct {
	DurationNs int64    `json:"durationNs"`
	Ops        []OpStat `json:"ops"`
	// SLO carries the server's own verdicts (from /api/stats).
	SLO []obs.SLOStatus `json:"slo"`
	// OpTotals carries the server's per-operator profile totals
	// (from /metrics); empty when the server ran unprofiled.
	OpTotals []OpTotal `json:"opTotals,omitempty"`
}

// opRecorder accumulates latencies for one operation class.
type opRecorder struct {
	mu     sync.Mutex
	ns     []int64
	errors int64
}

func (r *opRecorder) add(d time.Duration, ok bool) {
	r.mu.Lock()
	r.ns = append(r.ns, int64(d))
	if !ok {
		r.errors++
	}
	r.mu.Unlock()
}

func (r *opRecorder) stat(op string) OpStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := OpStat{Op: op, Count: int64(len(r.ns)), Errors: r.errors}
	if len(r.ns) == 0 {
		return st
	}
	sorted := append([]int64(nil), r.ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	st.P50Ns, st.P95Ns, st.P99Ns = pct(0.50), pct(0.95), pct(0.99)
	st.MaxNs = sorted[len(sorted)-1]
	return st
}

// RunDriver executes the closed loop and collects the report. An error
// is returned only when the server is unreachable outright; individual
// request failures are counted per operation instead.
func RunDriver(spec DriverSpec) (*DriverReport, error) {
	spec.defaults()
	base := strings.TrimRight(spec.BaseURL, "/")

	// Fail fast when nothing listens there: every worker would
	// otherwise spin on connection errors for the full duration.
	if _, err := fetch(spec.Client, base+"/api/stats"); err != nil {
		return nil, fmt.Errorf("workload driver: target %s unreachable: %w", base, err)
	}

	recs := map[string]*opRecorder{
		"feed": {}, "search": {}, "sparql": {}, "upload": {},
	}
	deadline := time.Now().Add(spec.Duration)
	var wg sync.WaitGroup
	var uploadSeq atomic.Int64

	for i := 0; i < spec.Readers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(worker)))
			for time.Now().Before(deadline) {
				switch rng.Intn(3) {
				case 0:
					kw := spec.Keywords[rng.Intn(len(spec.Keywords))]
					timeOp(spec.Client, recs["feed"], base+"/feeds/keyword/"+url.PathEscape(kw))
				case 1:
					term := spec.SearchTerms[rng.Intn(len(spec.SearchTerms))]
					// Type incrementally like the E4 AJAX client: each
					// prefix from 3 runes up is its own request.
					for n := 3; n <= len(term); n++ {
						timeOp(spec.Client, recs["search"], base+"/api/search?q="+url.QueryEscape(term[:n]))
					}
				default:
					q := spec.Queries[rng.Intn(len(spec.Queries))]
					timeOp(spec.Client, recs["sparql"], base+"/sparql?query="+url.QueryEscape(q))
				}
			}
		}(i)
	}
	for i := 0; i < spec.Uploaders; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + 1000 + int64(worker)))
			for time.Now().Before(deadline) {
				n := uploadSeq.Add(1)
				body, _ := json.Marshal(map[string]any{
					"user":     spec.UploadUsers[rng.Intn(len(spec.UploadUsers))],
					"filename": fmt.Sprintf("drv%06d.jpg", n),
					"title":    fmt.Sprintf("driver upload %d: what a wonderful evening", n),
					"tags":     []string{"driver"},
				})
				start := time.Now()
				resp, err := spec.Client.Post(base+"/api/upload", "application/json", bytes.NewReader(body))
				ok := err == nil && resp.StatusCode < 400
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
				recs["upload"].add(time.Since(start), ok)
			}
		}(i)
	}
	start := time.Now()
	wg.Wait()

	rep := &DriverReport{DurationNs: int64(time.Since(start))}
	for _, op := range []string{"feed", "search", "sparql", "upload"} {
		rep.Ops = append(rep.Ops, recs[op].stat(op))
	}
	if slo, err := FetchSLO(spec.Client, base); err == nil {
		rep.SLO = slo
	}
	if totals, err := FetchOpTotals(spec.Client, base); err == nil {
		rep.OpTotals = totals
	}
	return rep, nil
}

// timeOp GETs the URL and records its latency; non-2xx/3xx statuses
// and transport errors count as operation errors.
func timeOp(c *http.Client, rec *opRecorder, u string) {
	start := time.Now()
	status, err := fetch(c, u)
	rec.add(time.Since(start), err == nil && status < 400)
}

// fetch GETs and drains the URL, returning the status code.
func fetch(c *http.Client, u string) (int, error) {
	resp, err := c.Get(u)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// FetchSLO reads the server's SLO verdicts from /api/stats (the
// additive "slo" key).
func FetchSLO(c *http.Client, base string) ([]obs.SLOStatus, error) {
	resp, err := c.Get(strings.TrimRight(base, "/") + "/api/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc struct {
		SLO []obs.SLOStatus `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.SLO, nil
}

// FetchOpTotals scrapes /metrics and extracts the per-operator
// profile totals (lodify_sparql_op_nanos_total / _rows_total).
func FetchOpTotals(c *http.Client, base string) ([]OpTotal, error) {
	resp, err := c.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	byOp := map[string]*OpTotal{}
	for _, line := range strings.Split(string(raw), "\n") {
		name, labels, value, ok := parsePromLine(line)
		if !ok || (name != "lodify_sparql_op_nanos_total" && name != "lodify_sparql_op_rows_total") {
			continue
		}
		op := labels["op"]
		if op == "" {
			continue
		}
		t := byOp[op]
		if t == nil {
			t = &OpTotal{Op: op}
			byOp[op] = t
		}
		if name == "lodify_sparql_op_nanos_total" {
			t.Nanos = value
		} else {
			t.Rows = value
		}
	}
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	out := make([]OpTotal, 0, len(ops))
	for _, op := range ops {
		out = append(out, *byOp[op])
	}
	return out, nil
}

// parsePromLine parses one Prometheus text-format sample line:
// name{k="v",...} value. Comment and malformed lines report !ok.
func parsePromLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", nil, 0, false
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		return "", nil, 0, false
	}
	series := line[:sp]
	labels = map[string]string{}
	if br := strings.IndexByte(series, '{'); br >= 0 {
		if !strings.HasSuffix(series, "}") {
			return "", nil, 0, false
		}
		for _, pair := range strings.Split(series[br+1:len(series)-1], ",") {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				continue
			}
			labels[pair[:eq]] = strings.Trim(pair[eq+1:], `"`)
		}
		series = series[:br]
	}
	return series, labels, v, true
}

// ExplainAnalyze runs EXPLAIN ANALYZE for the query on the target's
// SPARQL endpoint and returns the raw explanation document.
func ExplainAnalyze(c *http.Client, base, query string) (json.RawMessage, error) {
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	u := strings.TrimRight(base, "/") + "/sparql?explain=analyze&query=" + url.QueryEscape(query)
	resp, err := c.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("explain analyze: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return json.RawMessage(raw), nil
}
