package workload

import (
	"testing"

	"lodify/internal/annotate"
	"lodify/internal/ctxmgr"
	"lodify/internal/lod"
	"lodify/internal/resolver"
	"lodify/internal/ugc"
)

func build(t testing.TB, spec Spec) (*ugc.Platform, *lod.World, *Corpus) {
	w := lod.Generate(lod.DefaultConfig())
	ctx := ctxmgr.New(w)
	pipe := annotate.NewPipeline(w.Store, resolver.DefaultBroker(w.Store), annotate.DefaultConfig())
	p := ugc.New(w.Store, ctx, pipe, ugc.Options{})
	c, err := Generate(p, w, spec)
	if err != nil {
		t.Fatal(err)
	}
	return p, w, c
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Users: 5, Contents: 40, FriendsPerUser: 2, RatedFraction: 0.5, Seed: 3}
	_, _, a := build(t, spec)
	_, _, b := build(t, spec)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].Title != b.Records[i].Title || a.Records[i].User != b.Records[i].User {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestGeneratePublishesEverything(t *testing.T) {
	spec := Spec{Users: 6, Contents: 50, FriendsPerUser: 2, RatedFraction: 1, Seed: 1}
	p, _, c := build(t, spec)
	if len(p.Contents()) != spec.Contents {
		t.Fatalf("published = %d", len(p.Contents()))
	}
	if len(c.Users) != spec.Users {
		t.Fatalf("users = %d", len(c.Users))
	}
	// Everyone has at least one friend.
	for _, u := range c.Users {
		if len(p.Friends(u)) == 0 {
			t.Fatalf("user %s has no friends", u)
		}
	}
}

func TestGroundTruthIndexes(t *testing.T) {
	_, w, c := build(t, Spec{Users: 8, Contents: 120, FriendsPerUser: 2, RatedFraction: 0.5, Seed: 2})
	total := 0
	for lm, idxs := range c.ByLandmark {
		total += len(idxs)
		for _, i := range idxs {
			if c.Records[i].Landmark != lm {
				t.Fatalf("index mismatch at %d", i)
			}
		}
	}
	if total == 0 {
		t.Fatal("no landmark contents generated")
	}
	intents := c.Intents(w, 2)
	if len(intents) == 0 {
		t.Fatal("no intents derived")
	}
	for _, in := range intents {
		if len(in.Relevant) < 2 || in.KeywordQuery == "" {
			t.Fatalf("bad intent %+v", in)
		}
	}
}

func TestPrecisionRecall(t *testing.T) {
	p, r := PrecisionRecall([]int64{1, 2, 3}, []int64{2, 3, 4, 5})
	if p != 2.0/3.0 || r != 0.5 {
		t.Fatalf("p=%f r=%f", p, r)
	}
	p, r = PrecisionRecall(nil, nil)
	if p != 1 || r != 1 {
		t.Fatalf("empty/empty = %f %f", p, r)
	}
	p, r = PrecisionRecall(nil, []int64{1})
	if p != 0 || r != 0 {
		t.Fatalf("miss = %f %f", p, r)
	}
	p, r = PrecisionRecall([]int64{1}, nil)
	if p != 0 || r != 1 {
		t.Fatalf("junk = %f %f", p, r)
	}
}

func TestE7ShapeSemanticBeatsKeywordRecall(t *testing.T) {
	// The paper's headline claim: keyword search over free-vocabulary
	// tags misses content; semantic retrieval finds it.
	p, w, c := build(t, Spec{Users: 10, Contents: 200, FriendsPerUser: 2, RatedFraction: 0.5, Seed: 11})
	intents := c.Intents(w, 3)
	if len(intents) == 0 {
		t.Skip("no dense intents at this corpus size")
	}
	var kwRecall, semRecall float64
	for _, in := range intents {
		kw := p.KeywordSearch(in.KeywordQuery)
		_, r1 := PrecisionRecall(kw, in.Relevant)
		kwRecall += r1

		// Semantic retrieval: geo query around the landmark.
		lmIRI, _ := w.DBpediaIRI(in.Landmark)
		pt, ok := p.Store.GeometryOf(lmIRI)
		if !ok {
			t.Fatalf("no geometry for %s", in.Landmark)
		}
		var sem []int64
		for _, subj := range p.Store.GeoWithin(pt, 0.05) {
			var id int64
			if n, _ := fmtSscan(subj.Value(), p.BaseURI+"cpg148_pictures/"); n > 0 {
				id = n
				sem = append(sem, id)
			}
		}
		_, r2 := PrecisionRecall(sem, in.Relevant)
		semRecall += r2
	}
	kwRecall /= float64(len(intents))
	semRecall /= float64(len(intents))
	if semRecall <= kwRecall {
		t.Fatalf("semantic recall %.2f should beat keyword recall %.2f", semRecall, kwRecall)
	}
	if semRecall < 0.9 {
		t.Fatalf("semantic recall = %.2f, want >= 0.9", semRecall)
	}
}

// fmtSscan extracts the numeric suffix of an IRI with the given
// prefix.
func fmtSscan(iri, prefix string) (int64, bool) {
	if len(iri) <= len(prefix) || iri[:len(prefix)] != prefix {
		return 0, false
	}
	var id int64
	for _, ch := range iri[len(prefix):] {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		id = id*10 + int64(ch-'0')
	}
	return id, true
}
