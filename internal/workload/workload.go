// Package workload generates deterministic user-generated-content
// corpora and retrieval intents for the benchmark harness. It stands
// in for the real photo uploads of the paper's user base: titles are
// drawn from per-language templates over the LOD world's landmarks,
// GPS positions jitter around the landmark, tags mix the content
// language and English, and every content records its ground-truth
// subject so retrieval experiments (E7) can compute recall exactly.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"lodify/internal/geo"
	"lodify/internal/lod"
	"lodify/internal/ugc"
)

// Spec parameterizes a corpus.
type Spec struct {
	Users    int
	Contents int
	// FriendsPerUser is the ring degree of the social graph; a few
	// random rewires approximate a small world.
	FriendsPerUser int
	// RatedFraction of contents get a 1..5 rating.
	RatedFraction float64
	Seed          int64
}

// DefaultSpec is the reference corpus.
func DefaultSpec() Spec {
	return Spec{Users: 20, Contents: 300, FriendsPerUser: 4, RatedFraction: 0.7, Seed: 7}
}

// Record is the ground truth for one generated content.
type Record struct {
	ID       int64
	User     string
	Lang     string
	City     string
	Landmark string // "" when the content is about the city at large
	Title    string
	Tags     []string
}

// Corpus is the generated workload.
type Corpus struct {
	Spec    Spec
	Users   []string
	Records []Record
	// ByLandmark indexes record positions by landmark name.
	ByLandmark map[string][]int
}

// titleTemplates produce titles mentioning a landmark (%s).
var titleTemplates = map[string][]string{
	"en": {
		"Sunset over %s",
		"A beautiful day at %s",
		"Walking around %s with friends",
		"%s by night",
	},
	"it": {
		"Tramonto su %s",
		"Una bella giornata a %s",
		"Passeggiata intorno a %s con gli amici",
		"%s di notte",
	},
	"fr": {
		"Coucher du soleil sur %s",
		"Une belle journée à %s",
		"Promenade autour de %s avec les amis",
	},
	"es": {
		"Puesta de sol sobre %s",
		"Un hermoso día en %s",
		"Paseando por %s con los amigos",
	},
	"de": {
		"Sonnenuntergang über %s",
		"Ein schöner Tag bei %s",
		"Spaziergang um %s mit Freunden",
	},
}

// noEntityTitles have no proper nouns (exercise the TF fallback).
var noEntityTitles = map[string][]string{
	"en": {"what a wonderful evening", "great food and good friends"},
	"it": {"che serata meravigliosa", "ottimo cibo e buoni amici"},
	"fr": {"quelle soirée merveilleuse"},
	"es": {"qué tarde tan maravillosa"},
	"de": {"was für ein wunderbarer abend"},
}

var langs = []string{"en", "it", "fr", "es", "de"}

// Generate registers users, wires a small-world friend graph and
// publishes the corpus through the real platform ingestion path.
func Generate(p *ugc.Platform, w *lod.World, spec Spec) (*Corpus, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	c := &Corpus{Spec: spec, ByLandmark: map[string][]int{}}

	for i := 0; i < spec.Users; i++ {
		name := fmt.Sprintf("user%02d", i)
		if _, err := p.Register(name, fmt.Sprintf("User %02d", i), ""); err != nil {
			return nil, err
		}
		c.Users = append(c.Users, name)
	}
	// Ring lattice + random rewires.
	n := len(c.Users)
	for i := 0; i < n; i++ {
		for k := 1; k <= spec.FriendsPerUser/2 && k < n; k++ {
			j := (i + k) % n
			if rng.Float64() < 0.1 {
				j = rng.Intn(n)
			}
			if j != i {
				if err := p.AddFriend(c.Users[i], c.Users[j]); err != nil {
					return nil, err
				}
			}
		}
	}

	// Scatter user presence around the cities so the context platform
	// can detect nearby buddies (people:fn context tags, §1.1).
	base := time.Date(2011, 6, 1, 10, 0, 0, 0, time.UTC)
	for i, u := range c.Users {
		city := w.Cities[i%len(w.Cities)]
		p.Ctx.UpdatePresence(u, jitter(rng, city.Point, 0.01), base)
	}

	for i := 0; i < spec.Contents; i++ {
		user := c.Users[rng.Intn(n)]
		lang := langs[rng.Intn(len(langs))]
		city := w.Cities[rng.Intn(len(w.Cities))]

		rec := Record{User: user, Lang: lang, City: city.Name}
		var pt geo.Point
		switch {
		case len(city.Landmarks) > 0 && rng.Float64() < 0.7:
			lm := city.Landmarks[rng.Intn(len(city.Landmarks))]
			rec.Landmark = lm.Name
			label := lm.Labels[lang]
			if label == "" {
				label = lm.Name
			}
			tpls := titleTemplates[lang]
			rec.Title = fmt.Sprintf(tpls[rng.Intn(len(tpls))], label)
			pt = jitter(rng, lm.Point, 0.01)
			// Tags in the content language (the folksonomy problem:
			// an English keyword search misses Italian tags).
			rec.Tags = []string{fold(label)}
			if rng.Float64() < 0.4 {
				rec.Tags = append(rec.Tags, fold(city.Labels[lang]))
			}
		case rng.Float64() < 0.5:
			label := city.Labels[lang]
			if label == "" {
				label = city.Name
			}
			tpls := titleTemplates[lang]
			rec.Title = fmt.Sprintf(tpls[rng.Intn(len(tpls))], label)
			pt = jitter(rng, city.Point, 0.05)
			rec.Tags = []string{fold(label)}
		default:
			tpls := noEntityTitles[lang]
			rec.Title = tpls[rng.Intn(len(tpls))]
			pt = jitter(rng, city.Point, 0.05)
		}

		// The uploader is evidently at the shot's location: refresh
		// their presence so later co-located uploads by friends pick
		// them up as nearby buddies.
		takenAt := base.Add(time.Duration(i) * time.Minute)
		p.Ctx.UpdatePresence(user, pt, takenAt)

		content, err := p.Publish(ugc.Upload{
			User:     user,
			Filename: fmt.Sprintf("w%05d.jpg", i),
			Title:    rec.Title,
			Tags:     rec.Tags,
			GPS:      &pt,
			TakenAt:  takenAt,
		})
		if err != nil {
			return nil, err
		}
		rec.ID = content.ID
		if rng.Float64() < spec.RatedFraction {
			if err := p.Rate(content.ID, 1+rng.Intn(5)); err != nil {
				return nil, err
			}
		}
		c.Records = append(c.Records, rec)
		if rec.Landmark != "" {
			c.ByLandmark[rec.Landmark] = append(c.ByLandmark[rec.Landmark], len(c.Records)-1)
		}
	}
	return c, nil
}

func jitter(rng *rand.Rand, p geo.Point, r float64) geo.Point {
	return geo.Point{
		Lon: p.Lon + (rng.Float64()*2-1)*r,
		Lat: p.Lat + (rng.Float64()*2-1)*r,
	}
}

// fold lowercases tags the way users type them.
func fold(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		if r == ' ' {
			// users rarely tag multiword phrases; keep first word only
			break
		}
		out = append(out, r)
	}
	return string(out)
}

// RelevantTo returns the ground-truth relevant content IDs for a
// landmark intent.
func (c *Corpus) RelevantTo(landmark string) []int64 {
	var out []int64
	for _, i := range c.ByLandmark[landmark] {
		out = append(out, c.Records[i].ID)
	}
	return out
}

// Intent is one retrieval intent for E7: the user wants content about
// a landmark, expressed as an English keyword on one side and as a
// semantic geo query on the other.
type Intent struct {
	Landmark string
	// KeywordQuery is what a keyword-searching user would type.
	KeywordQuery string
	// Relevant is the ground truth.
	Relevant []int64
}

// Intents derives intents for every landmark with at least minDocs
// relevant contents.
func (c *Corpus) Intents(w *lod.World, minDocs int) []Intent {
	var out []Intent
	for _, city := range w.Cities {
		for _, lm := range city.Landmarks {
			rel := c.RelevantTo(lm.Name)
			if len(rel) < minDocs {
				continue
			}
			kw := lm.Labels["en"]
			if kw == "" {
				kw = lm.Name
			}
			out = append(out, Intent{
				Landmark:     lm.Name,
				KeywordQuery: fold(kw),
				Relevant:     rel,
			})
		}
	}
	return out
}

// PrecisionRecall computes precision and recall of got against the
// relevant ground truth.
func PrecisionRecall(got, relevant []int64) (precision, recall float64) {
	if len(got) == 0 {
		if len(relevant) == 0 {
			return 1, 1
		}
		return 0, 0
	}
	rel := map[int64]bool{}
	for _, id := range relevant {
		rel[id] = true
	}
	hit := 0
	for _, id := range got {
		if rel[id] {
			hit++
		}
	}
	precision = float64(hit) / float64(len(got))
	if len(relevant) == 0 {
		recall = 1
	} else {
		recall = float64(hit) / float64(len(relevant))
	}
	return precision, recall
}
