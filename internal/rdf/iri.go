package rdf

import (
	"fmt"
	"strings"
)

// This file is the single sanctioned place where the platform mints
// IRIs from strings. The D2R mapping literature (and §2.1 of the
// paper) stresses that URI minting from relational keys is where
// malformed identifiers enter a triple store; the lodlint "rawiri"
// analyzer therefore forbids scheme-prefixed string concatenation and
// fmt.Sprintf outside this package. Callers build IRIs with MintIRI /
// MintIRIf (or their Must variants for trusted generated data), which
// validate the result before it can reach the store.

// CheckIRI reports whether s is acceptable as an absolute IRI
// reference: it must have an RFC 3987 scheme ("scheme:...") and must
// not contain whitespace, control characters or the characters
// forbidden inside an N-Triples IRIREF (<>"{}|^`\). Percent-escaped
// and query/fragment syntax is allowed.
func CheckIRI(s string) error {
	if s == "" {
		return fmt.Errorf("rdf: empty IRI")
	}
	colon := strings.IndexByte(s, ':')
	if colon <= 0 {
		return fmt.Errorf("rdf: IRI %q has no scheme", s)
	}
	for i := 0; i < colon; i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z':
		case i > 0 && ('0' <= c && c <= '9' || c == '+' || c == '-' || c == '.'):
		default:
			return fmt.Errorf("rdf: IRI %q has invalid scheme", s)
		}
	}
	for _, r := range s {
		switch {
		case r <= 0x20 || r == 0x7f:
			return fmt.Errorf("rdf: IRI %q contains whitespace or control character %q", s, r)
		case r == '<' || r == '>' || r == '"' || r == '{' || r == '}' ||
			r == '|' || r == '^' || r == '`' || r == '\\':
			return fmt.Errorf("rdf: IRI %q contains forbidden character %q", s, r)
		}
	}
	return nil
}

// MintIRI concatenates parts into an absolute IRI, validates it with
// CheckIRI and returns the IRI term.
func MintIRI(parts ...string) (Term, error) {
	s := strings.Join(parts, "")
	if err := CheckIRI(s); err != nil {
		return Term{}, err
	}
	return NewIRI(s), nil
}

// MustMintIRI is MintIRI panicking on invalid input; intended for
// IRIs built from trusted configuration or generated data.
func MustMintIRI(parts ...string) Term {
	t, err := MintIRI(parts...)
	if err != nil {
		panic(err)
	}
	return t
}

// MintIRIf formats an IRI with fmt.Sprintf, validates it with
// CheckIRI and returns the IRI term.
func MintIRIf(format string, args ...any) (Term, error) {
	s := fmt.Sprintf(format, args...)
	if err := CheckIRI(s); err != nil {
		return Term{}, err
	}
	return NewIRI(s), nil
}

// MustMintIRIf is MintIRIf panicking on invalid input.
func MustMintIRIf(format string, args ...any) Term {
	t, err := MintIRIf(format, args...)
	if err != nil {
		panic(err)
	}
	return t
}
