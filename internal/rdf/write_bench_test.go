package rdf

import (
	"fmt"
	"io"
	"testing"
)

// benchQuads builds a mixed-shape serialization corpus: IRIs, plain /
// language-tagged / typed literals with escapes, blanks, named graphs.
func benchQuads(n int) []Quad {
	out := make([]Quad, 0, n)
	g := NewIRI("http://ex.org/graph/ugc")
	for i := 0; i < n; i++ {
		s := NewIRI(fmt.Sprintf("http://ex.org/pic/%d", i))
		var o Term
		switch i % 4 {
		case 0:
			o = NewLangLiteral(fmt.Sprintf("Mole \"Antonelliana\" %d\n", i), "it")
		case 1:
			o = NewInteger(int64(i))
		case 2:
			o = NewIRI(fmt.Sprintf("http://ex.org/user/%d", i%97))
		case 3:
			o = NewLiteral(fmt.Sprintf("plain title %d", i))
		}
		q := Quad{S: s, P: NewIRI("http://purl.org/dc/elements/1.1/title"), O: o}
		if i%2 == 0 {
			q.G = g
		}
		out = append(out, q)
	}
	return out
}

func BenchmarkWriteNQuads(b *testing.B) {
	quads := benchQuads(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteNQuads(io.Discard, quads); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWriteNQuadsAllocRegression pins the serialization path's
// allocation budget: a reused NQuadsWriter buffer means writing N
// quads costs a constant number of allocations (writer + buffer
// growth), not O(N). The bound is deliberately loose — it catches a
// return to per-term string building, not buffer-growth tuning.
func TestWriteNQuadsAllocRegression(t *testing.T) {
	quads := benchQuads(1000)
	allocs := testing.AllocsPerRun(10, func() {
		if err := WriteNQuads(io.Discard, quads); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 20 {
		t.Fatalf("WriteNQuads(1000 quads) = %.0f allocs, want <= 20 (per-quad garbage regression)", allocs)
	}
}
