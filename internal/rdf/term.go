// Package rdf implements the RDF 1.1 data model used throughout the
// platform: IRIs, literals (plain, language-tagged and typed), blank
// nodes, triples and quads, together with readers and writers for the
// N-Triples, N-Quads and a practical subset of the Turtle syntax.
//
// The package is the foundation of the semanticization described in
// §2.1 of "LODifying personal content sharing": every other subsystem
// (the quad store, the SPARQL engine, the D2R mapper, the annotation
// pipeline) exchanges data as rdf.Term and rdf.Quad values.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three RDF term kinds plus the zero value.
type TermKind uint8

const (
	// TermInvalid is the kind of the zero Term.
	TermInvalid TermKind = iota
	// TermIRI is an absolute IRI reference.
	TermIRI
	// TermLiteral is a literal with optional language tag or datatype.
	TermLiteral
	// TermBlank is a blank node with a document-scoped label.
	TermBlank
)

// String returns a human-readable kind name.
func (k TermKind) String() string {
	switch k {
	case TermIRI:
		return "iri"
	case TermLiteral:
		return "literal"
	case TermBlank:
		return "blank"
	default:
		return "invalid"
	}
}

// Well-known datatype and vocabulary IRIs.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDDate     = "http://www.w3.org/2001/XMLSchema#date"

	RDFType       = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFLangString = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

	RDFSLabel   = "http://www.w3.org/2000/01/rdf-schema#label"
	RDFSComment = "http://www.w3.org/2000/01/rdf-schema#comment"
	RDFSSeeAlso = "http://www.w3.org/2000/01/rdf-schema#seeAlso"

	// VirtGeometry is the predicate Virtuoso attaches geometries to;
	// the paper's queries rely on geo:geometry (§2.3).
	GeoGeometry = "http://www.w3.org/2003/01/geo/wgs84_pos#geometry"
	GeoLat      = "http://www.w3.org/2003/01/geo/wgs84_pos#lat"
	GeoLong     = "http://www.w3.org/2003/01/geo/wgs84_pos#long"

	// VirtRDFGeometry mirrors Virtuoso's geometry literal datatype used
	// by bif:st_intersects filters.
	VirtRDFGeometry = "http://www.openlinksw.com/schemas/virtrdf#Geometry"
)

// Term is an RDF term. The zero Term is invalid. Terms are immutable
// value types and are safe to copy and to use as map keys.
type Term struct {
	kind TermKind
	// value holds the IRI, the literal lexical form, or the blank label.
	value string
	// lang is the language tag (literals only, mutually exclusive with
	// a non-default datatype per RDF 1.1).
	lang string
	// datatype is the datatype IRI for typed literals. Empty means
	// xsd:string for plain literals (RDF 1.1 semantics).
	datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{kind: TermIRI, value: iri} }

// NewBlank returns a blank node term with the given label (without the
// leading "_:" prefix).
func NewBlank(label string) Term { return Term{kind: TermBlank, value: label} }

// NewLiteral returns a plain literal (datatype xsd:string).
func NewLiteral(lex string) Term { return Term{kind: TermLiteral, value: lex} }

// NewLangLiteral returns a language-tagged literal. The tag is
// normalized to lowercase as language tags are case-insensitive.
func NewLangLiteral(lex, lang string) Term {
	return Term{kind: TermLiteral, value: lex, lang: strings.ToLower(lang)}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
// A datatype of xsd:string is normalized to the plain form.
func NewTypedLiteral(lex, datatype string) Term {
	if datatype == XSDString || datatype == "" {
		return Term{kind: TermLiteral, value: lex}
	}
	return Term{kind: TermLiteral, value: lex, datatype: datatype}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{kind: TermLiteral, value: fmt.Sprintf("%d", v), datatype: XSDInteger}
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return Term{kind: TermLiteral, value: formatFloat(v), datatype: XSDDouble}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	if v {
		return Term{kind: TermLiteral, value: "true", datatype: XSDBoolean}
	}
	return Term{kind: TermLiteral, value: "false", datatype: XSDBoolean}
}

// Kind reports the term kind.
func (t Term) Kind() TermKind { return t.kind }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.kind == TermIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.kind == TermLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.kind == TermBlank }

// IsZero reports whether the term is the zero (invalid) term.
func (t Term) IsZero() bool { return t.kind == TermInvalid }

// Value returns the IRI, literal lexical form or blank node label.
func (t Term) Value() string { return t.value }

// Lang returns the language tag of a language-tagged literal, or "".
func (t Term) Lang() string { return t.lang }

// Datatype returns the literal's datatype IRI. Plain literals report
// xsd:string and language-tagged literals rdf:langString, matching
// RDF 1.1 abstract syntax.
func (t Term) Datatype() string {
	if t.kind != TermLiteral {
		return ""
	}
	if t.lang != "" {
		return RDFLangString
	}
	if t.datatype == "" {
		return XSDString
	}
	return t.datatype
}

// Equal reports term equality per RDF 1.1 (kind, value, language tag
// and datatype all match).
func (t Term) Equal(o Term) bool { return t == o }

// Clone returns a copy of t whose strings share no backing memory
// with a larger buffer. The zero-copy parsers slice term strings out
// of whole input lines or chunks; a long-lived holder (the store
// dictionary) clones what it retains so one interned term cannot pin
// an entire parse chunk.
func (t Term) Clone() Term {
	t.value = strings.Clone(t.value)
	t.lang = strings.Clone(t.lang)
	t.datatype = strings.Clone(t.datatype)
	return t
}

// String renders the term in N-Triples syntax. Invalid terms render
// as "<invalid>"; this is intended for diagnostics only.
func (t Term) String() string {
	return string(AppendTerm(nil, t))
}

// AppendTerm appends the term's N-Triples rendering to dst and
// returns the extended slice. It is the allocation-free core behind
// Term.String and the N-Quads writers: serializing into a reused
// buffer costs no per-term garbage.
func AppendTerm(dst []byte, t Term) []byte {
	switch t.kind {
	case TermIRI:
		return appendIRI(dst, t.value)
	case TermBlank:
		dst = append(dst, '_', ':')
		return append(dst, t.value...)
	case TermLiteral:
		dst = appendLiteralLex(dst, t.value)
		switch {
		case t.lang != "":
			dst = append(dst, '@')
			dst = append(dst, t.lang...)
		case t.datatype != "":
			dst = append(dst, '^', '^')
			dst = appendIRI(dst, t.datatype)
		}
		return dst
	default:
		return append(dst, "<invalid>"...)
	}
}

// Compare orders terms deterministically: blanks < IRIs < literals,
// then by value, then by language tag, then by datatype. It implements
// the SPARQL ORDER BY term ordering used by the query engine.
func (t Term) Compare(o Term) int {
	if t.kind != o.kind {
		return int(kindRank(t.kind)) - int(kindRank(o.kind))
	}
	if c := strings.Compare(t.value, o.value); c != 0 {
		return c
	}
	if c := strings.Compare(t.lang, o.lang); c != 0 {
		return c
	}
	return strings.Compare(t.datatype, o.datatype)
}

func kindRank(k TermKind) uint8 {
	switch k {
	case TermBlank:
		return 1
	case TermIRI:
		return 2
	case TermLiteral:
		return 3
	default:
		return 0
	}
}

func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	// xsd:double lexical forms require an exponent or decimal point to
	// be distinguishable from integers; %g may emit a bare integer.
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "NaN") && !strings.Contains(s, "Inf") {
		s += ".0"
	}
	return s
}

const hexUpper = "0123456789ABCDEF"

// appendIRI appends "<"+escaped(s)+">". Every character N-Triples
// requires escaping in an IRI is ASCII, so the scan is byte-wise and
// clean spans copy in bulk.
func appendIRI(dst []byte, s string) []byte {
	dst = append(dst, '<')
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '<', '>', '"', '{', '}', '|', '^', '`', '\\':
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '0', '0', hexUpper[c>>4], hexUpper[c&0xF])
			start = i + 1
		}
	}
	dst = append(dst, s[start:]...)
	return append(dst, '>')
}

// appendLiteralLex appends the quoted, escaped lexical form.
func appendLiteralLex(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		var esc byte
		switch s[i] {
		case '"':
			esc = '"'
		case '\\':
			esc = '\\'
		case '\n':
			esc = 'n'
		case '\r':
			esc = 'r'
		case '\t':
			esc = 't'
		default:
			continue
		}
		dst = append(dst, s[start:i]...)
		dst = append(dst, '\\', esc)
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
