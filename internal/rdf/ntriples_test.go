package rdf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNTriplesBasic(t *testing.T) {
	doc := `
# a comment
<http://ex.org/s> <http://ex.org/p> "plain" .
<http://ex.org/s> <http://ex.org/p> "con tag"@it .
<http://ex.org/s> <http://ex.org/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://ex.org/p> <http://ex.org/o> .   # trailing comment
`
	ts, err := ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("got %d triples", len(ts))
	}
	if ts[1].O.Lang() != "it" {
		t.Errorf("lang = %q", ts[1].O.Lang())
	}
	if ts[2].O.Datatype() != XSDInteger {
		t.Errorf("datatype = %q", ts[2].O.Datatype())
	}
	if !ts[3].S.IsBlank() || ts[3].S.Value() != "b1" {
		t.Errorf("blank subject = %v", ts[3].S)
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	doc := `<http://ex.org/s> <http://ex.org/p> "line1\nline2\t\"q\" \\ é \U0001F600" .`
	ts, err := ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "line1\nline2\t\"q\" \\ é 😀"
	if got := ts[0].O.Value(); got != want {
		t.Fatalf("unescaped = %q, want %q", got, want)
	}
}

func TestParseNQuadsGraphComponent(t *testing.T) {
	doc := `<http://s> <http://p> "o" <http://g> .
<http://s> <http://p> "o2" .`
	qs, err := ParseNQuads(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("got %d quads", len(qs))
	}
	if qs[0].G.Value() != "http://g" {
		t.Errorf("graph = %v", qs[0].G)
	}
	if !qs[1].InDefaultGraph() {
		t.Error("second quad should be in default graph")
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> "unterminated .`,
		`<http://s> <http://p> .`,
		`<http://s> <http://p> "o"`,
		`"lit" <http://p> "o" .`,
		`<http://s> _:b "o" .`,
		`<http://s> <http://p> "o" . trailing`,
		`<http://s <http://p> "o" .`,
		`<http://s> <http://p> "o"@ .`,
		`_: <http://p> "o" .`,
		`<http://s> <http://p> "bad\q" .`,
		`<http://s> <http://p> "trunc\u00" .`,
	}
	for _, doc := range bad {
		if _, err := ParseNTriples(doc); err == nil {
			t.Errorf("accepted invalid doc %q", doc)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("error for %q is %T, want *ParseError", doc, err)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseNTriples("<http://s> <http://p> \"ok\" .\n<http://s> bogus \"o\" .")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "2:") {
		t.Fatalf("Error() = %q lacks position", pe.Error())
	}
}

func TestWriteNTriplesRoundTrip(t *testing.T) {
	orig := []Triple{
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLangLiteral("Mole\n\"Antonelliana\"", "it")),
		NewTriple(NewBlank("x"), NewIRI("http://p"), NewInteger(42)),
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseNTriples(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip count %d != %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Errorf("triple %d: got %v want %v", i, got[i], orig[i])
		}
	}
}

// Property: arbitrary generated quads survive an N-Quads round trip.
func TestQuickNQuadsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		quads := make([]Quad, 0, n)
		for i := 0; i < n; i++ {
			s := NewIRI("http://example.org/s/" + randToken(r))
			if r.Intn(3) == 0 {
				s = NewBlank("b" + randToken(r))
			}
			p := NewIRI("http://example.org/p/" + randToken(r))
			o := randomTerm(r)
			var g Term
			if r.Intn(2) == 0 {
				g = NewIRI("http://example.org/g/" + randToken(r))
			}
			quads = append(quads, NewQuad(s, p, o, g))
		}
		var buf bytes.Buffer
		if err := WriteNQuads(&buf, quads); err != nil {
			return false
		}
		got, err := ParseNQuads(buf.String())
		if err != nil || len(got) != len(quads) {
			return false
		}
		for i := range quads {
			if got[i] != quads[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNTriplesReaderStreamsLargeInput(t *testing.T) {
	var sb strings.Builder
	const n = 5000
	for i := 0; i < n; i++ {
		sb.WriteString(NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewInteger(int64(i))).String())
		sb.WriteString("\n")
	}
	r := NewNTriplesReader(strings.NewReader(sb.String()))
	count := 0
	for {
		_, err := r.Read()
		if err != nil {
			break
		}
		count++
	}
	if count != n {
		t.Fatalf("streamed %d triples, want %d", count, n)
	}
}
