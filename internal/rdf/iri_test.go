package rdf

import (
	"strings"
	"testing"
)

func TestCheckIRI(t *testing.T) {
	valid := []string{
		"http://dbpedia.org/resource/Turin",
		"https://example.org/a/b?x=1&y=2#frag",
		"http://beta.teamlife.it/cpg148_pictures/42",
		"urn:uuid:6e8bc430-9c3a-11d9-9669-0800200c9a66",
		"mailto:user@example.org",
		"http://example.org/%20escaped",
		"http://example.org/caffè", // IRIs allow non-ASCII
	}
	for _, s := range valid {
		if err := CheckIRI(s); err != nil {
			t.Errorf("CheckIRI(%q) = %v, want nil", s, err)
		}
	}
	invalid := []string{
		"",
		"no-scheme",
		"/relative/path",
		"http://example.org/with space",
		"http://example.org/tab\there",
		"http://example.org/new\nline",
		"http://example.org/<angle>",
		"http://example.org/back\\slash",
		"http://example.org/ba`ckquote",
		"1http://bad-scheme.example/",
		":noscheme",
	}
	for _, s := range invalid {
		if err := CheckIRI(s); err == nil {
			t.Errorf("CheckIRI(%q) = nil, want error", s)
		}
	}
}

func TestMintIRI(t *testing.T) {
	got, err := MintIRI("http://", "example.org", "/users/", "alice")
	if err != nil {
		t.Fatalf("MintIRI: %v", err)
	}
	if !got.IsIRI() || got.Value() != "http://example.org/users/alice" {
		t.Fatalf("MintIRI = %v", got)
	}
	if _, err := MintIRI("http://example.org/bad path"); err == nil {
		t.Fatal("MintIRI accepted IRI with space")
	}
	if _, err := MintIRI(); err == nil {
		t.Fatal("MintIRI accepted empty input")
	}
}

func TestMintIRIf(t *testing.T) {
	got, err := MintIRIf("%scpg148_pictures/%d", "http://beta.teamlife.it/", 42)
	if err != nil {
		t.Fatalf("MintIRIf: %v", err)
	}
	if got.Value() != "http://beta.teamlife.it/cpg148_pictures/42" {
		t.Fatalf("MintIRIf = %v", got)
	}
	if _, err := MintIRIf("%s with space", "http://x.example/"); err == nil {
		t.Fatal("MintIRIf accepted IRI with space")
	}
}

func TestMustMintIRIPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustMintIRI did not panic on invalid IRI")
		}
		if !strings.Contains(r.(error).Error(), "whitespace") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	MustMintIRI("http://example.org/a b")
}
