package rdf

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name     string
		term     Term
		kind     TermKind
		value    string
		lang     string
		datatype string
	}{
		{"iri", NewIRI("http://example.org/a"), TermIRI, "http://example.org/a", "", ""},
		{"blank", NewBlank("b1"), TermBlank, "b1", "", ""},
		{"plain literal", NewLiteral("hello"), TermLiteral, "hello", "", XSDString},
		{"lang literal", NewLangLiteral("ciao", "IT"), TermLiteral, "ciao", "it", RDFLangString},
		{"typed literal", NewTypedLiteral("5", XSDInteger), TermLiteral, "5", "", XSDInteger},
		{"xsd:string collapses to plain", NewTypedLiteral("x", XSDString), TermLiteral, "x", "", XSDString},
		{"integer", NewInteger(-42), TermLiteral, "-42", "", XSDInteger},
		{"boolean", NewBoolean(true), TermLiteral, "true", "", XSDBoolean},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.term.Kind() != tt.kind {
				t.Errorf("kind = %v, want %v", tt.term.Kind(), tt.kind)
			}
			if tt.term.Value() != tt.value {
				t.Errorf("value = %q, want %q", tt.term.Value(), tt.value)
			}
			if tt.term.Lang() != tt.lang {
				t.Errorf("lang = %q, want %q", tt.term.Lang(), tt.lang)
			}
			if tt.datatype != "" && tt.term.Datatype() != tt.datatype {
				t.Errorf("datatype = %q, want %q", tt.term.Datatype(), tt.datatype)
			}
		})
	}
}

func TestZeroTermIsInvalid(t *testing.T) {
	var z Term
	if !z.IsZero() || z.Kind() != TermInvalid {
		t.Fatalf("zero Term should be invalid, got kind %v", z.Kind())
	}
	if got := z.String(); got != "<invalid>" {
		t.Fatalf("zero Term String = %q", got)
	}
}

func TestDoubleLexicalForm(t *testing.T) {
	d := NewDouble(2)
	if !strings.ContainsAny(d.Value(), ".eE") {
		t.Errorf("double lexical form %q lacks decimal point or exponent", d.Value())
	}
	d2 := NewDouble(1.5e30)
	if d2.Value() != "1.5e+30" {
		t.Errorf("got %q", d2.Value())
	}
}

func TestTermStringNTriples(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/x"), "<http://ex.org/x>"},
		{NewBlank("n0"), "_:n0"},
		{NewLiteral("a b"), `"a b"`},
		{NewLiteral("say \"hi\"\n"), `"say \"hi\"\n"`},
		{NewLangLiteral("Mole Antonelliana", "it"), `"Mole Antonelliana"@it`},
		{NewInteger(7), `"7"^^<http://www.w3.org/2001/XMLSchema#integer>`},
	}
	for _, tt := range tests {
		if got := tt.term.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestTermCompareOrdering(t *testing.T) {
	// blanks < IRIs < literals
	b, i, l := NewBlank("z"), NewIRI("http://a"), NewLiteral("a")
	if !(b.Compare(i) < 0 && i.Compare(l) < 0 && b.Compare(l) < 0) {
		t.Fatal("kind ordering violated")
	}
	if NewLiteral("a").Compare(NewLiteral("a")) != 0 {
		t.Fatal("equal literals should compare 0")
	}
	if NewLangLiteral("a", "en").Compare(NewLangLiteral("a", "it")) >= 0 {
		t.Fatal("lang tag should break ties")
	}
}

func randomTerm(r *rand.Rand) Term {
	lex := randString(r)
	switch r.Intn(4) {
	case 0:
		return NewIRI("http://example.org/" + randToken(r))
	case 1:
		return NewBlank("b" + randToken(r))
	case 2:
		return NewLiteral(lex)
	default:
		langs := []string{"en", "it", "fr", "es", "de"}
		return NewLangLiteral(lex, langs[r.Intn(len(langs))])
	}
}

func randString(r *rand.Rand) string {
	runes := []rune("abcXYZ 午\"\\\n\té…")
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(runes[r.Intn(len(runes))])
	}
	return b.String()
}

func randToken(r *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 1 + r.Intn(10)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[r.Intn(len(alpha))])
	}
	return b.String()
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTerm(r), randomTerm(r)
		ab, ba := a.Compare(b), b.Compare(a)
		if a.Equal(b) {
			return ab == 0 && ba == 0
		}
		return ab == -ba || (ab == 0 && ba == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every random term round-trips through N-Triples syntax.
func TestQuickTermNTriplesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randomTerm(r)
		doc := NewIRI("http://s").String() + " " + NewIRI("http://p").String() + " " + term.String() + " ."
		if term.IsIRI() || term.IsBlank() {
			doc = term.String() + " " + NewIRI("http://p").String() + " " + NewLiteral("o").String() + " ."
		}
		ts, err := ParseNTriples(doc)
		if err != nil || len(ts) != 1 {
			return false
		}
		got := ts[0].O
		if term.IsIRI() || term.IsBlank() {
			got = ts[0].S
		}
		return got.Equal(term)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGraphBasicOps(t *testing.T) {
	g := NewGraph()
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	if !g.Add(tr) {
		t.Fatal("first Add should report true")
	}
	if g.Add(tr) {
		t.Fatal("duplicate Add should report false")
	}
	if !g.Has(tr) || g.Len() != 1 {
		t.Fatal("membership broken")
	}
	if !g.Remove(tr) || g.Remove(tr) {
		t.Fatal("Remove semantics broken")
	}
}

func TestGraphObjectsSorted(t *testing.T) {
	g := NewGraph()
	s, p := NewIRI("http://s"), NewIRI("http://p")
	g.Add(NewTriple(s, p, NewLiteral("b")))
	g.Add(NewTriple(s, p, NewLiteral("a")))
	g.Add(NewTriple(s, NewIRI("http://q"), NewLiteral("zz")))
	got := g.Objects(s, p)
	if len(got) != 2 || got[0].Value() != "a" || got[1].Value() != "b" {
		t.Fatalf("Objects = %v", got)
	}
}

func TestGraphMerge(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	t1 := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("1"))
	t2 := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("2"))
	a.Add(t1)
	b.Add(t1)
	b.Add(t2)
	if n := a.Merge(b); n != 1 {
		t.Fatalf("Merge added %d, want 1", n)
	}
	if a.Len() != 2 {
		t.Fatalf("merged len = %d", a.Len())
	}
}

func TestTripleValidate(t *testing.T) {
	ok := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid triple rejected: %v", err)
	}
	bad := []Triple{
		NewTriple(NewLiteral("s"), NewIRI("http://p"), NewLiteral("o")),
		NewTriple(NewIRI("http://s"), NewBlank("p"), NewLiteral("o")),
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), Term{}),
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad triple %d accepted", i)
		}
	}
}

func TestPrefixMapExpandCompact(t *testing.T) {
	pm := CommonPrefixes()
	iri, ok := pm.Expand("foaf:knows")
	if !ok || iri != "http://xmlns.com/foaf/0.1/knows" {
		t.Fatalf("Expand = %q, %v", iri, ok)
	}
	c, ok := pm.Compact("http://xmlns.com/foaf/0.1/knows")
	if !ok || c != "foaf:knows" {
		t.Fatalf("Compact = %q, %v", c, ok)
	}
	if _, ok := pm.Expand("nope:x"); ok {
		t.Fatal("unbound prefix expanded")
	}
	if _, ok := pm.Expand("plain"); ok {
		t.Fatal("colon-less input expanded")
	}
	// Local names that would need escaping are left as full IRIs.
	if _, ok := pm.Compact("http://xmlns.com/foaf/0.1/a/b"); ok {
		t.Fatal("slashy local name should not compact")
	}
}

func TestPrefixMapLongestMatchWins(t *testing.T) {
	pm := NewPrefixMap()
	pm.Set("a", "http://ex.org/")
	pm.Set("b", "http://ex.org/deep/")
	c, ok := pm.Compact("http://ex.org/deep/x")
	if !ok || c != "b:x" {
		t.Fatalf("Compact = %q, want b:x", c)
	}
}

func TestCompareQuadsGraphFirst(t *testing.T) {
	s, p, o := NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o")
	q1 := NewQuad(s, p, o, NewIRI("http://g1"))
	q2 := NewQuad(s, p, o, NewIRI("http://g2"))
	if CompareQuads(q1, q2) >= 0 {
		t.Fatal("graph should order first")
	}
	dg := NewQuad(s, p, o, Term{})
	if !dg.InDefaultGraph() {
		t.Fatal("zero graph should be default graph")
	}
}

func TestKindRankCoversAllKinds(t *testing.T) {
	seen := map[uint8]bool{}
	for _, k := range []TermKind{TermInvalid, TermBlank, TermIRI, TermLiteral} {
		r := kindRank(k)
		if seen[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		seen[r] = true
	}
}

func TestTermIsUsableAsMapKey(t *testing.T) {
	m := map[Term]int{}
	m[NewLiteral("x")] = 1
	m[NewLangLiteral("x", "en")] = 2
	m[NewTypedLiteral("x", XSDInteger)] = 3
	if len(m) != 3 {
		t.Fatalf("distinct literals collided: %v", m)
	}
	if !reflect.DeepEqual(m[NewLiteral("x")], 1) {
		t.Fatal("lookup failed")
	}
}
