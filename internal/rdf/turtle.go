package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// WriteTurtle writes the triples grouped by subject using the given
// prefix map (which may be nil). Output is deterministic.
func WriteTurtle(w io.Writer, triples []Triple, pm *PrefixMap) error {
	bw := bufio.NewWriter(w)
	if pm == nil {
		pm = NewPrefixMap()
	}
	used := usedPrefixes(triples, pm)
	for _, p := range used {
		ns, _ := pm.Get(p)
		fmt.Fprintf(bw, "@prefix %s: <%s> .\n", p, ns)
	}
	if len(used) > 0 {
		bw.WriteString("\n")
	}

	sorted := make([]Triple, len(triples))
	copy(sorted, triples)
	sort.Slice(sorted, func(i, j int) bool { return CompareTriples(sorted[i], sorted[j]) < 0 })

	for i := 0; i < len(sorted); {
		s := sorted[i].S
		j := i
		for j < len(sorted) && sorted[j].S == s {
			j++
		}
		bw.WriteString(turtleTerm(s, pm))
		group := sorted[i:j]
		for k := 0; k < len(group); {
			p := group[k].P
			m := k
			for m < len(group) && group[m].P == p {
				m++
			}
			if k == 0 {
				bw.WriteString(" ")
			} else {
				bw.WriteString(" ;\n\t")
			}
			bw.WriteString(turtlePredicate(p, pm))
			for n := k; n < m; n++ {
				if n > k {
					bw.WriteString(" ,")
				}
				bw.WriteString(" " + turtleTerm(group[n].O, pm))
			}
			k = m
		}
		bw.WriteString(" .\n")
		i = j
	}
	return bw.Flush()
}

func usedPrefixes(triples []Triple, pm *PrefixMap) []string {
	set := map[string]bool{}
	note := func(t Term) {
		if t.IsIRI() {
			if c, ok := pm.Compact(t.Value()); ok {
				set[c[:strings.Index(c, ":")]] = true
			}
		}
		if t.IsLiteral() && t.Lang() == "" && t.Datatype() != XSDString {
			if c, ok := pm.Compact(t.Datatype()); ok {
				set[c[:strings.Index(c, ":")]] = true
			}
		}
	}
	for _, t := range triples {
		note(t.S)
		note(t.P)
		note(t.O)
	}
	var out []string
	for _, p := range pm.Prefixes() {
		if set[p] {
			out = append(out, p)
		}
	}
	return out
}

func turtlePredicate(p Term, pm *PrefixMap) string {
	if p.Value() == RDFType {
		return "a"
	}
	return turtleTerm(p, pm)
}

func turtleTerm(t Term, pm *PrefixMap) string {
	switch t.Kind() {
	case TermIRI:
		if c, ok := pm.Compact(t.Value()); ok {
			return c
		}
		return t.String()
	case TermLiteral:
		if t.Lang() == "" {
			switch t.Datatype() {
			case XSDInteger, XSDBoolean, XSDDecimal:
				return t.Value()
			case XSDString:
				return t.String()
			default:
				if c, ok := pm.Compact(t.Datatype()); ok {
					return string(appendLiteralLex(nil, t.Value())) + "^^" + c
				}
			}
		}
		return t.String()
	default:
		return t.String()
	}
}

// ParseTurtle parses a practical subset of Turtle: @prefix and PREFIX
// directives, CURIEs, 'a', semicolon and comma continuation lists,
// numeric/boolean shorthand literals, language tags, typed literals,
// blank node labels and [] anonymous nodes. Collections ( ... ) are
// not supported.
func ParseTurtle(src string) ([]Triple, *PrefixMap, error) {
	p := &turtleParser{src: src, pm: NewPrefixMap(), line: 1}
	triples, err := p.parse()
	if err != nil {
		return nil, nil, err
	}
	return triples, p.pm, nil
}

type turtleParser struct {
	src    string
	pos    int
	line   int
	pm     *PrefixMap
	base   string
	bnSeq  int
	triple []Triple
}

func (p *turtleParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: 0, Msg: fmt.Sprintf(format, args...)}
}

func (p *turtleParser) parse() ([]Triple, error) {
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return p.triple, nil
		}
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) statement() error {
	if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
		return p.prefixDirective()
	}
	if p.hasKeyword("@base") || p.hasKeyword("BASE") {
		return p.baseDirective()
	}
	s, err := p.subject()
	if err != nil {
		return err
	}
	if err := p.predicateObjectList(s); err != nil {
		return err
	}
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != '.' {
		return p.errf("expected '.' after statement")
	}
	p.pos++
	return nil
}

func (p *turtleParser) hasKeyword(kw string) bool {
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.src) {
		c := p.src[end]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' && c != '<' {
			return false
		}
	}
	return true
}

func (p *turtleParser) prefixDirective() error {
	atForm := p.src[p.pos] == '@'
	if atForm {
		p.pos += len("@prefix")
	} else {
		p.pos += len("PREFIX")
	}
	p.skipWS()
	colon := strings.IndexByte(p.src[p.pos:], ':')
	if colon < 0 {
		return p.errf("malformed prefix directive")
	}
	name := strings.TrimSpace(p.src[p.pos : p.pos+colon])
	p.pos += colon + 1
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return p.errf("expected IRI in prefix directive")
	}
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.pm.Set(name, iri)
	if atForm {
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != '.' {
			return p.errf("expected '.' after @prefix")
		}
		p.pos++
	}
	return nil
}

func (p *turtleParser) baseDirective() error {
	atForm := p.src[p.pos] == '@'
	if atForm {
		p.pos += len("@base")
	} else {
		p.pos += len("BASE")
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	if atForm {
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != '.' {
			return p.errf("expected '.' after @base")
		}
		p.pos++
	}
	return nil
}

func (p *turtleParser) subject() (Term, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("unexpected EOF, expected subject")
	}
	switch p.src[p.pos] {
	case '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case '_':
		return p.blankLabel()
	case '[':
		return p.anonBlank()
	default:
		return p.curieTerm()
	}
}

func (p *turtleParser) anonBlank() (Term, error) {
	p.pos++ // consume '['
	p.bnSeq++
	b := NewBlank(fmt.Sprintf("anon%d", p.bnSeq))
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ']' {
		p.pos++
		return b, nil
	}
	if err := p.predicateObjectList(b); err != nil {
		return Term{}, err
	}
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != ']' {
		return Term{}, p.errf("expected ']'")
	}
	p.pos++
	return b, nil
}

func (p *turtleParser) predicateObjectList(s Term) error {
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			o, err := p.object()
			if err != nil {
				return err
			}
			p.triple = append(p.triple, Triple{S: s, P: pred, O: o})
			p.skipWS()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ';' {
			p.pos++
			p.skipWS()
			// Allow trailing ';' before '.' or ']'.
			if p.pos < len(p.src) && (p.src[p.pos] == '.' || p.src[p.pos] == ']') {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *turtleParser) predicate() (Term, error) {
	if p.pos < len(p.src) && p.src[p.pos] == 'a' {
		if p.pos+1 >= len(p.src) || isTurtleWS(p.src[p.pos+1]) || p.src[p.pos+1] == '<' {
			p.pos++
			return NewIRI(RDFType), nil
		}
	}
	if p.pos < len(p.src) && p.src[p.pos] == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	}
	return p.curieTerm()
}

func isTurtleWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func (p *turtleParser) object() (Term, error) {
	if p.pos >= len(p.src) {
		return Term{}, p.errf("unexpected EOF, expected object")
	}
	c := p.src[p.pos]
	switch {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '_':
		return p.blankLabel()
	case c == '[':
		return p.anonBlank()
	case c == '"' || c == '\'':
		return p.turtleLiteral()
	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return p.numericLiteral()
	case strings.HasPrefix(p.src[p.pos:], "true") && p.boundaryAt(p.pos+4):
		p.pos += 4
		return NewBoolean(true), nil
	case strings.HasPrefix(p.src[p.pos:], "false") && p.boundaryAt(p.pos+5):
		p.pos += 5
		return NewBoolean(false), nil
	default:
		return p.curieTerm()
	}
}

func (p *turtleParser) boundaryAt(i int) bool {
	if i >= len(p.src) {
		return true
	}
	c := p.src[i]
	return isTurtleWS(c) || c == '.' || c == ';' || c == ',' || c == ']' || c == ')'
}

func (p *turtleParser) iriRef() (string, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return "", p.errf("expected '<'")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '>' {
		if p.src[p.pos] == '\n' {
			return "", p.errf("newline in IRI")
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[start:p.pos]
	p.pos++
	if p.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		iri = p.base + iri
	}
	return iri, nil
}

func (p *turtleParser) blankLabel() (Term, error) {
	if !strings.HasPrefix(p.src[p.pos:], "_:") {
		return Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.src) && isBlankLabelChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.src[start:p.pos]), nil
}

func (p *turtleParser) curieTerm() (Term, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if isTurtleWS(c) || c == ';' || c == ',' || c == ']' || c == ')' ||
			(c == '.' && p.boundaryAt(p.pos+1)) {
			break
		}
		p.pos++
	}
	tok := p.src[start:p.pos]
	if tok == "" {
		return Term{}, p.errf("expected term")
	}
	iri, ok := p.pm.Expand(tok)
	if !ok {
		return Term{}, p.errf("unknown prefix in %q", tok)
	}
	return NewIRI(iri), nil
}

func (p *turtleParser) numericLiteral() (Term, error) {
	start := p.pos
	if p.src[p.pos] == '+' || p.src[p.pos] == '-' {
		p.pos++
	}
	seenDot, seenExp := false, false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c >= '0' && c <= '9':
			p.pos++
		case c == '.' && !seenDot && !seenExp && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9':
			seenDot = true
			p.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			p.pos++
			if p.pos < len(p.src) && (p.src[p.pos] == '+' || p.src[p.pos] == '-') {
				p.pos++
			}
		default:
			goto done
		}
	}
done:
	lex := p.src[start:p.pos]
	switch {
	case seenExp:
		return NewTypedLiteral(lex, XSDDouble), nil
	case seenDot:
		return NewTypedLiteral(lex, XSDDecimal), nil
	default:
		return NewTypedLiteral(lex, XSDInteger), nil
	}
}

func (p *turtleParser) turtleLiteral() (Term, error) {
	quote := p.src[p.pos]
	long := strings.HasPrefix(p.src[p.pos:], strings.Repeat(string(quote), 3))
	var lex string
	if long {
		p.pos += 3
		end := strings.Index(p.src[p.pos:], strings.Repeat(string(quote), 3))
		if end < 0 {
			return Term{}, p.errf("unterminated long literal")
		}
		lex = p.src[p.pos : p.pos+end]
		p.line += strings.Count(lex, "\n")
		p.pos += end + 3
	} else {
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.src) {
				return Term{}, p.errf("unterminated literal")
			}
			c := p.src[p.pos]
			if c == quote {
				p.pos++
				break
			}
			if c == '\n' {
				return Term{}, p.errf("newline in literal")
			}
			if c == '\\' {
				lp := &lineParser{s: p.src, pos: p.pos, line: p.line}
				r, err := lp.unescape()
				if err != nil {
					return Term{}, err
				}
				p.pos = lp.pos
				b.WriteRune(r)
				continue
			}
			r, size := utf8.DecodeRuneInString(p.src[p.pos:])
			b.WriteRune(r)
			p.pos += size
		}
		lex = b.String()
	}
	if p.pos < len(p.src) && p.src[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && (isAlphaNum(p.src[p.pos]) || p.src[p.pos] == '-') {
			p.pos++
		}
		return NewLangLiteral(lex, p.src[start:p.pos]), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		if p.pos < len(p.src) && p.src[p.pos] == '<' {
			iri, err := p.iriRef()
			if err != nil {
				return Term{}, err
			}
			return NewTypedLiteral(lex, iri), nil
		}
		t, err := p.curieTerm()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, t.Value()), nil
	}
	return NewLiteral(lex), nil
}

// IsValidLangTag loosely validates BCP47-style language tags used in
// langMatches filters (letters, digits and hyphens, starting with a
// letter).
func IsValidLangTag(tag string) bool {
	if tag == "" {
		return false
	}
	for i, r := range tag {
		switch {
		case unicode.IsLetter(r):
		case r == '-' && i > 0:
		case unicode.IsDigit(r) && i > 0:
		default:
			return false
		}
	}
	return true
}
