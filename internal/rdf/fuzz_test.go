package rdf

import (
	"strings"
	"testing"
)

// FuzzParseNQuadLine drives the single-statement parser with arbitrary
// bytes and checks its contract: it never panics, and any line it
// accepts must survive a serialize→reparse round trip unchanged (the
// quad the store dumps is the quad it loaded). Seeds cover the shapes
// the ntriples tests exercise plus the escape, language-tag and
// datatype edges that historically break N-Triples parsers.
func FuzzParseNQuadLine(f *testing.F) {
	for _, seed := range []string{
		// Plain shapes from the test corpus.
		`<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .`,
		`<http://ex.org/s> <http://ex.org/p> "hello" .`,
		`_:b0 <http://ex.org/p> _:b1 .`,
		`<http://ex.org/s> <http://ex.org/p> "v" <http://ex.org/g> .`,
		`  <http://a>   <http://p>   "spaced"   .  `,
		`# a comment line`,
		``,
		// Language tags.
		`<http://a> <http://p> "ciao"@it .`,
		`<http://a> <http://p> "ciao"@it-IT .`,
		`<http://a> <http://p> "x"@ .`,
		// Datatypes.
		`<http://a> <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`<http://a> <http://p> "x"^^<> .`,
		`<http://a> <http://p> "x"^ .`,
		// Escapes.
		`<http://a> <http://p> "tab\there \"quoted\" \\ backslash" .`,
		`<http://a> <http://p> "é \U0001F600" .`,
		`<http://a> <http://p> "\u00g9" .`,
		`<http://a> <http://p> "truncated\` + `u00" .`,
		`<http://a> <http://p> "bad\q" .`,
		`<http://a> <http://p> "unterminated .`,
		// IRI edges.
		`<http://aéb> <http://p> "iri escape" .`,
		`<unterminated <http://p> "x" .`,
		`<http://a> <http://p> bogus .`,
		`<http://a> <http://p> "x"`,
		`<http://a> <http://p> "x" <http://g> extra .`,
		// Malformed shapes from the bulk-ingest error tests: lines the
		// chunked parser must reject at the same position as the
		// sequential one.
		`<http://ex.org/s> bogus .`,
		`<http://beta.teamlife.it/broken> nonsense here .`,
		`also not a statement`,
		`\r` + "\r",
		// An overlong line: a statement far past any chunk size, to
		// steer the fuzzer toward buffer-boundary handling.
		`<http://a> <http://p> "` + strings.Repeat("padding ", 512) + `" .`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		q, err := parseNQuadLine(line, 1)
		if err != nil {
			return // rejected input: only the no-panic contract applies
		}
		if strings.IndexByte(line, '\n') >= 0 || strings.IndexByte(line, '\r') >= 0 {
			// Callers split on line endings before parseNQuadLine; a
			// multi-line string can't reach it through any public path.
			return
		}
		out := string(AppendQuad(nil, q))
		q2, err := parseNQuadLine(out, 1)
		if err != nil {
			t.Fatalf("round trip of %q failed: serialized %q: %v", line, out, err)
		}
		if q2 != q {
			t.Fatalf("round trip of %q changed the quad:\n  first  %#v\n  second %#v", line, q, q2)
		}
	})
}
