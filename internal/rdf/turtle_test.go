package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseTurtleDirectivesAndLists(t *testing.T) {
	src := `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
PREFIX ex: <http://ex.org/>

ex:oscar a foaf:Person ;
    foaf:name "oscar" ;
    foaf:knows ex:walter , ex:carmen .

ex:walter foaf:name "Walter Goix"@en .
`
	triples, pm, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 5 {
		t.Fatalf("got %d triples: %v", len(triples), triples)
	}
	if ns, ok := pm.Get("foaf"); !ok || ns != "http://xmlns.com/foaf/0.1/" {
		t.Errorf("foaf prefix = %q", ns)
	}
	g := NewGraph()
	for _, tr := range triples {
		g.Add(tr)
	}
	oscar := NewIRI("http://ex.org/oscar")
	knows := g.Objects(oscar, NewIRI("http://xmlns.com/foaf/0.1/knows"))
	if len(knows) != 2 {
		t.Fatalf("knows = %v", knows)
	}
	types := g.Objects(oscar, NewIRI(RDFType))
	if len(types) != 1 || types[0].Value() != "http://xmlns.com/foaf/0.1/Person" {
		t.Fatalf("types = %v", types)
	}
}

func TestParseTurtleLiteralShorthands(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
ex:s ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.14 ;
     ex:dbl 1.0e6 ;
     ex:t true ;
     ex:f false ;
     ex:typed "5"^^ex:custom ;
     ex:long """multi
line""" .`
	triples, _, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	byPred := map[string]Term{}
	for _, tr := range triples {
		byPred[tr.P.Value()] = tr.O
	}
	if o := byPred["http://ex.org/int"]; o.Datatype() != XSDInteger || o.Value() != "42" {
		t.Errorf("int = %v", o)
	}
	if o := byPred["http://ex.org/neg"]; o.Value() != "-7" {
		t.Errorf("neg = %v", o)
	}
	if o := byPred["http://ex.org/dec"]; o.Datatype() != XSDDecimal {
		t.Errorf("dec = %v", o)
	}
	if o := byPred["http://ex.org/dbl"]; o.Datatype() != XSDDouble {
		t.Errorf("dbl = %v", o)
	}
	if o := byPred["http://ex.org/t"]; o.Datatype() != XSDBoolean || o.Value() != "true" {
		t.Errorf("t = %v", o)
	}
	if o := byPred["http://ex.org/typed"]; o.Datatype() != "http://ex.org/custom" {
		t.Errorf("typed = %v", o)
	}
	if o := byPred["http://ex.org/long"]; o.Value() != "multi\nline" {
		t.Errorf("long = %q", o.Value())
	}
}

func TestParseTurtleAnonBlankNode(t *testing.T) {
	src := `@prefix ex: <http://ex.org/> .
ex:s ex:p [ ex:q "v" ] .
ex:s2 ex:p [] .`
	triples, _, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 3 {
		t.Fatalf("got %d triples: %v", len(triples), triples)
	}
	var inner, outer int
	for _, tr := range triples {
		if tr.S.IsBlank() {
			inner++
		}
		if tr.O.IsBlank() {
			outer++
		}
	}
	if inner != 1 || outer != 2 {
		t.Fatalf("inner=%d outer=%d", inner, outer)
	}
}

func TestParseTurtleBase(t *testing.T) {
	src := `@base <http://ex.org/> .
<a> <b> <c> .`
	triples, _, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if triples[0].S.Value() != "http://ex.org/a" {
		t.Fatalf("base not applied: %v", triples[0])
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`ex:s ex:p "o" .`, // unknown prefix
		`@prefix ex: <http://e/> .` + "\n" + `ex:s ex:p "unterminated .`,
		`@prefix ex: <http://e/> .` + "\n" + `ex:s ex:p "o"`, // missing dot
	}
	for _, src := range bad {
		if _, _, err := ParseTurtle(src); err == nil {
			t.Errorf("accepted invalid turtle %q", src)
		}
	}
}

func TestWriteTurtleRoundTrip(t *testing.T) {
	pm := CommonPrefixes()
	orig := []Triple{
		NewTriple(NewIRI("http://dbpedia.org/resource/Turin"), NewIRI(RDFSLabel), NewLangLiteral("Torino", "it")),
		NewTriple(NewIRI("http://dbpedia.org/resource/Turin"), NewIRI(RDFSLabel), NewLangLiteral("Turin", "en")),
		NewTriple(NewIRI("http://dbpedia.org/resource/Turin"), NewIRI(RDFType), NewIRI("http://dbpedia.org/ontology/Place")),
		NewTriple(NewIRI("http://ex.org/pic/1"), NewIRI("http://purl.org/stuff/rev#rating"), NewInteger(5)),
	}
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, orig, pm); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@prefix rdfs:") {
		t.Errorf("missing used prefix declaration in:\n%s", out)
	}
	if strings.Contains(out, "@prefix foaf:") {
		t.Errorf("unused prefix declared in:\n%s", out)
	}
	got, _, err := ParseTurtle(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, out)
	}
	gotG, origG := NewGraph(), NewGraph()
	for _, tr := range got {
		gotG.Add(tr)
	}
	for _, tr := range orig {
		origG.Add(tr)
	}
	if gotG.Len() != origG.Len() {
		t.Fatalf("round trip size %d != %d\n%s", gotG.Len(), origG.Len(), out)
	}
	origG.Each(func(tr Triple) bool {
		if !gotG.Has(tr) {
			t.Errorf("lost triple %v", tr)
		}
		return true
	})
}

func TestWriteTurtleUsesAKeyword(t *testing.T) {
	var buf bytes.Buffer
	triples := []Triple{NewTriple(NewIRI("http://s"), NewIRI(RDFType), NewIRI("http://C"))}
	if err := WriteTurtle(&buf, triples, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), " a <http://C>") {
		t.Fatalf("expected 'a' keyword, got %q", buf.String())
	}
}

func TestIsValidLangTag(t *testing.T) {
	for _, ok := range []string{"en", "it", "en-US", "pt-br", "x-klingon1"} {
		if !IsValidLangTag(ok) {
			t.Errorf("rejected valid tag %q", ok)
		}
	}
	for _, bad := range []string{"", "-en", "1en", "en us", "en_US"} {
		if IsValidLangTag(bad) {
			t.Errorf("accepted invalid tag %q", bad)
		}
	}
}

func TestParseTurtleTrailingSemicolon(t *testing.T) {
	src := `@prefix ex: <http://e/> .
ex:s ex:p "v" ; .`
	triples, _, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 1 {
		t.Fatalf("got %d", len(triples))
	}
}
