package rdf

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// collectChunked parses doc through the chunked path and concatenates
// the emitted batches.
func collectChunked(t *testing.T, doc string, opts BulkOptions) ([]Quad, BulkStats, error) {
	t.Helper()
	var out []Quad
	stats, err := ParseNQuadsChunked(strings.NewReader(doc), opts, func(batch []Quad) error {
		// Batch terms alias the parse buffer; retaining them past emit
		// requires a clone (the documented contract).
		for _, q := range batch {
			out = append(out, q.Clone())
		}
		return nil
	})
	return out, stats, err
}

// bulkTestDoc builds n statement lines interleaved with comments and
// blanks, so physical line numbers diverge from statement counts.
func bulkTestDoc(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i%7 == 0 {
			sb.WriteString("# comment\n\n")
		}
		fmt.Fprintf(&sb, "<http://ex.org/s/%d> <http://ex.org/p> \"v %d\"@en <http://ex.org/g/%d> .\n", i, i, i%3)
	}
	return sb.String()
}

func TestParseNQuadsChunkedMatchesSequential(t *testing.T) {
	doc := bulkTestDoc(500)
	want, err := ParseNQuads(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []BulkOptions{
		{},                               // defaults
		{ChunkSize: 64, Workers: 4},      // many tiny chunks, carry splits mid-line
		{ChunkSize: 1, Workers: 2},       // pathological: every read is smaller than a line
		{ChunkSize: 1 << 20, Workers: 8}, // one chunk holds everything
		{ChunkSize: 64, Workers: 1},      // fused path, tiny chunks
		{ChunkSize: 1 << 20, Workers: 1}, // fused path, one chunk
	} {
		got, stats, err := collectChunked(t, doc, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(got) != len(want) {
			t.Fatalf("opts %+v: %d quads, want %d", opts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opts %+v: quad %d = %v, want %v", opts, i, got[i], want[i])
			}
		}
		if stats.Quads != len(want) || stats.Chunks == 0 {
			t.Fatalf("opts %+v: stats %+v", opts, stats)
		}
	}
}

func TestParseNQuadsChunkedNoTrailingNewline(t *testing.T) {
	doc := "<http://a> <http://p> \"x\" .\n<http://b> <http://p> \"y\" ."
	got, _, err := collectChunked(t, doc, BulkOptions{ChunkSize: 16, Workers: 2})
	if err != nil || len(got) != 2 {
		t.Fatalf("got %d quads, err %v", len(got), err)
	}
	if got[1].S.Value() != "http://b" {
		t.Fatalf("last quad = %v", got[1])
	}
}

func TestParseNQuadsChunkedCRLF(t *testing.T) {
	doc := "<http://a> <http://p> \"x\" .\r\n<http://b> <http://p> \"y\" .\r\n"
	got, _, err := collectChunked(t, doc, BulkOptions{ChunkSize: 8, Workers: 2})
	if err != nil || len(got) != 2 {
		t.Fatalf("got %d quads, err %v", len(got), err)
	}
}

// TestParseNQuadsChunkedErrorLine proves the parallel path reports
// the same first error, at the same line, as the sequential reader —
// and that every statement before the bad line was emitted, even when
// later chunks (parsed concurrently, possibly first) also hold
// errors.
func TestParseNQuadsChunkedErrorLine(t *testing.T) {
	var sb strings.Builder
	good := 0
	for i := 0; i < 300; i++ {
		switch i {
		case 137, 252: // two bad lines; only the first may be reported
			sb.WriteString("<http://ex.org/s> bogus .\n")
		default:
			fmt.Fprintf(&sb, "<http://ex.org/s/%d> <http://ex.org/p> \"v\" .\n", i)
			if i < 137 {
				good++
			}
		}
	}
	doc := sb.String()

	_, seqErr := ParseNQuads(doc)
	var seqPE *ParseError
	if !errors.As(seqErr, &seqPE) {
		t.Fatalf("sequential error = %v", seqErr)
	}

	for _, opts := range []BulkOptions{{}, {ChunkSize: 128, Workers: 4}, {ChunkSize: 33, Workers: 3}, {ChunkSize: 50, Workers: 1}} {
		got, _, err := collectChunked(t, doc, opts)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("opts %+v: error = %v, want *ParseError", opts, err)
		}
		if pe.Line != seqPE.Line || pe.Line != 138 {
			t.Fatalf("opts %+v: error line %d, want %d (sequential %d)", opts, pe.Line, 138, seqPE.Line)
		}
		if len(got) != good {
			t.Fatalf("opts %+v: emitted %d quads before error, want %d", opts, len(got), good)
		}
	}
}

func TestParseNQuadsChunkedEmitErrorStops(t *testing.T) {
	doc := bulkTestDoc(2000)
	boom := errors.New("boom")
	calls := 0
	_, err := ParseNQuadsChunked(strings.NewReader(doc), BulkOptions{ChunkSize: 512, Workers: 4}, func(batch []Quad) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times after error", calls)
	}
}

func TestParseNQuadsChunkedOverlongLine(t *testing.T) {
	doc := "<http://a> <http://p> \"" + strings.Repeat("x", maxLineBytes+10) + "\" ."
	for _, workers := range []int{2, 1} {
		_, _, err := collectChunked(t, doc, BulkOptions{ChunkSize: 1 << 20, Workers: workers})
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("workers=%d: err = %v, want bufio.ErrTooLong", workers, err)
		}
	}
}

func TestParseNQuadsChunkedEmpty(t *testing.T) {
	for _, doc := range []string{"", "\n\n", "# only comments\n# more\n"} {
		got, _, err := collectChunked(t, doc, BulkOptions{})
		if err != nil || len(got) != 0 {
			t.Fatalf("doc %q: %d quads, err %v", doc, len(got), err)
		}
	}
}

func BenchmarkParseNQuadsSequential(b *testing.B) {
	doc := bulkTestDoc(20000)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNQuads(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseNQuadsChunked(b *testing.B) {
	doc := bulkTestDoc(20000)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNQuadsChunked(strings.NewReader(doc), BulkOptions{}, func([]Quad) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
