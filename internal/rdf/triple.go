package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is an RDF triple. Subject must be an IRI or blank node,
// predicate an IRI, object any term; constructors do not enforce this
// so that streaming parsers can report violations with positions, but
// Triple.Validate checks it.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Validate reports whether the triple is well-formed RDF.
func (t Triple) Validate() error {
	switch {
	case !t.S.IsIRI() && !t.S.IsBlank():
		return fmt.Errorf("rdf: subject must be IRI or blank node, got %s", t.S.Kind())
	case !t.P.IsIRI():
		return fmt.Errorf("rdf: predicate must be IRI, got %s", t.P.Kind())
	case t.O.IsZero():
		return fmt.Errorf("rdf: object is invalid")
	}
	return nil
}

// String renders the triple in N-Triples syntax (without newline).
func (t Triple) String() string {
	return string(AppendTriple(nil, t))
}

// AppendTriple appends the triple's N-Triples rendering (without
// newline) to dst.
func AppendTriple(dst []byte, t Triple) []byte {
	dst = AppendTerm(dst, t.S)
	dst = append(dst, ' ')
	dst = AppendTerm(dst, t.P)
	dst = append(dst, ' ')
	dst = AppendTerm(dst, t.O)
	return append(dst, ' ', '.')
}

// Quad is a triple within a named graph. A zero Graph term means the
// default graph.
type Quad struct {
	S, P, O, G Term
}

// NewQuad builds a quad. Pass a zero Term as g for the default graph.
func NewQuad(s, p, o, g Term) Quad { return Quad{S: s, P: p, O: o, G: g} }

// Triple returns the quad's triple component.
func (q Quad) Triple() Triple { return Triple{S: q.S, P: q.P, O: q.O} }

// InDefaultGraph reports whether the quad belongs to the default graph.
func (q Quad) InDefaultGraph() bool { return q.G.IsZero() }

// Clone returns a quad whose terms share no backing memory with q.
// Callers retaining quads from a ParseNQuadsChunked batch beyond the
// emit call must clone them: batch terms alias the parse buffer, which
// is recycled once emit returns.
func (q Quad) Clone() Quad {
	return Quad{S: q.S.Clone(), P: q.P.Clone(), O: q.O.Clone(), G: q.G.Clone()}
}

// String renders the quad in N-Quads syntax (without newline).
func (q Quad) String() string {
	return string(AppendQuad(nil, q))
}

// AppendQuad appends the quad's N-Quads rendering (without newline)
// to dst. Default-graph quads render as plain triples.
func AppendQuad(dst []byte, q Quad) []byte {
	if q.InDefaultGraph() {
		return AppendTriple(dst, q.Triple())
	}
	dst = AppendTerm(dst, q.S)
	dst = append(dst, ' ')
	dst = AppendTerm(dst, q.P)
	dst = append(dst, ' ')
	dst = AppendTerm(dst, q.O)
	dst = append(dst, ' ')
	dst = AppendTerm(dst, q.G)
	return append(dst, ' ', '.')
}

// Graph is an in-memory set of triples with convenience accessors.
// It preserves no order; use Sorted for deterministic output. Graph is
// not safe for concurrent mutation.
type Graph struct {
	set map[Triple]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{set: make(map[Triple]struct{})} }

// Add inserts a triple, reporting whether it was new.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = struct{}{}
	return true
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if _, ok := g.set[t]; !ok {
		return false
	}
	delete(g.set, t)
	return true
}

// Has reports membership.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.set) }

// Each calls fn for every triple until fn returns false.
func (g *Graph) Each(fn func(Triple) bool) {
	for t := range g.set {
		if !fn(t) {
			return
		}
	}
}

// Sorted returns all triples in deterministic (S,P,O) order.
func (g *Graph) Sorted() []Triple {
	out := make([]Triple, 0, len(g.set))
	for t := range g.set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return CompareTriples(out[i], out[j]) < 0 })
	return out
}

// Objects returns all objects of triples with the given subject and
// predicate, in deterministic order.
func (g *Graph) Objects(s, p Term) []Term {
	var out []Term
	for t := range g.set {
		if t.S == s && t.P == p {
			out = append(out, t.O)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Merge adds all triples of o into g and returns the count added.
func (g *Graph) Merge(o *Graph) int {
	n := 0
	for t := range o.set {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// CompareTriples orders triples by subject, predicate, object.
func CompareTriples(a, b Triple) int {
	if c := a.S.Compare(b.S); c != 0 {
		return c
	}
	if c := a.P.Compare(b.P); c != 0 {
		return c
	}
	return a.O.Compare(b.O)
}

// CompareQuads orders quads by graph, subject, predicate, object.
func CompareQuads(a, b Quad) int {
	if c := a.G.Compare(b.G); c != 0 {
		return c
	}
	return CompareTriples(a.Triple(), b.Triple())
}

// PrefixMap maps prefixes (without the trailing colon) to namespace
// IRIs, supporting CURIE expansion/compaction for Turtle output and
// SPARQL parsing.
type PrefixMap struct {
	byPrefix map[string]string
	prefixes []string // insertion order for deterministic output
}

// NewPrefixMap returns an empty prefix map.
func NewPrefixMap() *PrefixMap {
	return &PrefixMap{byPrefix: make(map[string]string)}
}

// CommonPrefixes returns a prefix map preloaded with the namespaces
// the paper's queries use (rdf, rdfs, foaf, sioct, comm, rev, geo,
// dbpo, lgdo, xsd, dc, gn).
func CommonPrefixes() *PrefixMap {
	pm := NewPrefixMap()
	for _, p := range [][2]string{
		{"rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"},
		{"rdfs", "http://www.w3.org/2000/01/rdf-schema#"},
		{"xsd", "http://www.w3.org/2001/XMLSchema#"},
		{"foaf", "http://xmlns.com/foaf/0.1/"},
		{"sioct", "http://rdfs.org/sioc/types#"},
		{"sioc", "http://rdfs.org/sioc/ns#"},
		{"comm", "http://comm.semanticweb.org/core.owl#"},
		{"rev", "http://purl.org/stuff/rev#"},
		{"geo", "http://www.w3.org/2003/01/geo/wgs84_pos#"},
		{"dbpo", "http://dbpedia.org/ontology/"},
		{"dbpedia", "http://dbpedia.org/resource/"},
		{"lgdo", "http://linkedgeodata.org/ontology/"},
		{"lgdp", "http://linkedgeodata.org/property/"},
		{"gn", "http://www.geonames.org/ontology#"},
		{"dc", "http://purl.org/dc/elements/1.1/"},
		{"dcterms", "http://purl.org/dc/terms/"},
	} {
		pm.Set(p[0], p[1])
	}
	return pm
}

// Set binds prefix to ns, replacing any previous binding.
func (pm *PrefixMap) Set(prefix, ns string) {
	if _, ok := pm.byPrefix[prefix]; !ok {
		pm.prefixes = append(pm.prefixes, prefix)
	}
	pm.byPrefix[prefix] = ns
}

// Get returns the namespace bound to prefix.
func (pm *PrefixMap) Get(prefix string) (string, bool) {
	ns, ok := pm.byPrefix[prefix]
	return ns, ok
}

// Expand resolves a CURIE like "foaf:name" to a full IRI. It returns
// false when the prefix is unbound or the input has no colon.
func (pm *PrefixMap) Expand(curie string) (string, bool) {
	i := strings.Index(curie, ":")
	if i < 0 {
		return "", false
	}
	ns, ok := pm.byPrefix[curie[:i]]
	if !ok {
		return "", false
	}
	return ns + curie[i+1:], true
}

// Compact rewrites iri as a CURIE using the longest matching namespace,
// returning the IRI unchanged (and false) when no prefix applies or
// the local part would need escaping.
func (pm *PrefixMap) Compact(iri string) (string, bool) {
	best, bestNS := "", ""
	for _, p := range pm.prefixes {
		ns := pm.byPrefix[p]
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			best, bestNS = p, ns
		}
	}
	if bestNS == "" {
		return iri, false
	}
	local := iri[len(bestNS):]
	if local == "" || strings.ContainsAny(local, "/#:?") {
		return iri, false
	}
	return best + ":" + local, true
}

// Prefixes returns the bound prefixes in insertion order.
func (pm *PrefixMap) Prefixes() []string {
	out := make([]string, len(pm.prefixes))
	copy(out, pm.prefixes)
	return out
}
