package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError reports a syntax error with its input position.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// NTriplesReader streams triples from N-Triples input. It also accepts
// N-Quads lines; the graph component is exposed via ReadQuad.
type NTriplesReader struct {
	sc   *bufio.Scanner
	line int
}

// NewNTriplesReader wraps r.
func NewNTriplesReader(r io.Reader) *NTriplesReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &NTriplesReader{sc: sc}
}

// Read returns the next triple, dropping any graph label, or io.EOF.
func (r *NTriplesReader) Read() (Triple, error) {
	q, err := r.ReadQuad()
	return q.Triple(), err
}

// ReadQuad returns the next quad (graph zero for triples) or io.EOF.
func (r *NTriplesReader) ReadQuad() (Quad, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseNQuadLine(line, r.line)
		if err != nil {
			return Quad{}, err
		}
		return q, nil
	}
	if err := r.sc.Err(); err != nil {
		return Quad{}, err
	}
	return Quad{}, io.EOF
}

// ParseNTriples parses a complete N-Triples document.
func ParseNTriples(s string) ([]Triple, error) {
	r := NewNTriplesReader(strings.NewReader(s))
	var out []Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// ParseNQuads parses a complete N-Quads document.
func ParseNQuads(s string) ([]Quad, error) {
	r := NewNTriplesReader(strings.NewReader(s))
	var out []Quad
	for {
		q, err := r.ReadQuad()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipWS() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) eof() bool { return p.pos >= len(p.s) }

func parseNQuadLine(line string, lineno int) (Quad, error) {
	p := &lineParser{s: line, line: lineno}
	s, err := p.term()
	if err != nil {
		return Quad{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Quad{}, err
	}
	o, err := p.term()
	if err != nil {
		return Quad{}, err
	}
	p.skipWS()
	var g Term
	if !p.eof() && p.s[p.pos] != '.' {
		g, err = p.term()
		if err != nil {
			return Quad{}, err
		}
	}
	p.skipWS()
	if p.eof() || p.s[p.pos] != '.' {
		return Quad{}, p.errf("expected terminating '.'")
	}
	p.pos++
	p.skipWS()
	if !p.eof() && !strings.HasPrefix(p.s[p.pos:], "#") {
		return Quad{}, p.errf("trailing content after '.'")
	}
	q := Quad{S: s, P: pr, O: o, G: g}
	if err := q.Triple().Validate(); err != nil {
		return Quad{}, p.errf("%v", err)
	}
	return q, nil
}

// term parses one N-Triples term at the current position.
func (p *lineParser) term() (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, p.errf("unexpected end of line, expected term")
	}
	switch p.s[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, p.errf("unexpected character %q", p.s[p.pos])
	}
}

func (p *lineParser) iri() (Term, error) {
	p.pos++ // consume '<'
	var b strings.Builder
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch c {
		case '>':
			p.pos++
			return NewIRI(b.String()), nil
		case '\\':
			r, err := p.unescape()
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
		default:
			if c == ' ' || c == '<' || c == '"' {
				return Term{}, p.errf("illegal character %q in IRI", c)
			}
			b.WriteByte(c)
			p.pos++
		}
	}
	return Term{}, p.errf("unterminated IRI")
}

func (p *lineParser) blank() (Term, error) {
	if !strings.HasPrefix(p.s[p.pos:], "_:") {
		return Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.s) && isBlankLabelChar(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.s[start:p.pos]), nil
}

func isBlankLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}

func (p *lineParser) literal() (Term, error) {
	p.pos++ // consume opening quote
	var b strings.Builder
	for {
		if p.pos >= len(p.s) {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.s[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			r, err := p.unescape()
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	if p.pos < len(p.s) && p.s[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && (isAlphaNum(p.s[p.pos]) || p.s[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, p.s[start:p.pos]), nil
	}
	if strings.HasPrefix(p.s[p.pos:], "^^") {
		p.pos += 2
		if p.eof() || p.s[p.pos] != '<' {
			return Term{}, p.errf("expected datatype IRI after ^^")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value()), nil
	}
	return NewLiteral(lex), nil
}

func isAlphaNum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// unescape consumes a backslash escape starting at p.pos (which must
// point at the backslash) and returns the decoded rune.
func (p *lineParser) unescape() (rune, error) {
	p.pos++ // consume backslash
	if p.eof() {
		return 0, p.errf("dangling escape")
	}
	c := p.s[p.pos]
	p.pos++
	switch c {
	case 't':
		return '\t', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u', 'U':
		n := 4
		if c == 'U' {
			n = 8
		}
		if p.pos+n > len(p.s) {
			return 0, p.errf("truncated \\%c escape", c)
		}
		v, err := strconv.ParseUint(p.s[p.pos:p.pos+n], 16, 32)
		if err != nil {
			return 0, p.errf("invalid \\%c escape: %v", c, err)
		}
		p.pos += n
		return rune(v), nil
	default:
		return 0, p.errf("unknown escape \\%c", c)
	}
}

// WriteNTriples writes triples in N-Triples syntax.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(t.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteNQuads writes quads in N-Quads syntax.
func WriteNQuads(w io.Writer, quads []Quad) error {
	bw := bufio.NewWriter(w)
	for _, q := range quads {
		if _, err := bw.WriteString(q.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
