package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError reports a syntax error with its input position.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// NTriplesReader streams triples from N-Triples input. It also accepts
// N-Quads lines; the graph component is exposed via ReadQuad.
type NTriplesReader struct {
	sc   *bufio.Scanner
	line int
}

// NewNTriplesReader wraps r.
func NewNTriplesReader(r io.Reader) *NTriplesReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &NTriplesReader{sc: sc}
}

// Read returns the next triple, dropping any graph label, or io.EOF.
func (r *NTriplesReader) Read() (Triple, error) {
	q, err := r.ReadQuad()
	return q.Triple(), err
}

// ReadQuad returns the next quad (graph zero for triples) or io.EOF.
func (r *NTriplesReader) ReadQuad() (Quad, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseNQuadLine(line, r.line)
		if err != nil {
			return Quad{}, err
		}
		return q, nil
	}
	if err := r.sc.Err(); err != nil {
		return Quad{}, err
	}
	return Quad{}, io.EOF
}

// ParseNTriples parses a complete N-Triples document.
func ParseNTriples(s string) ([]Triple, error) {
	r := NewNTriplesReader(strings.NewReader(s))
	var out []Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// ParseNQuads parses a complete N-Quads document.
func ParseNQuads(s string) ([]Quad, error) {
	r := NewNTriplesReader(strings.NewReader(s))
	var out []Quad
	for {
		q, err := r.ReadQuad()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipWS() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) eof() bool { return p.pos >= len(p.s) }

func parseNQuadLine(line string, lineno int) (Quad, error) {
	p := &lineParser{s: line, line: lineno}
	s, err := p.term()
	if err != nil {
		return Quad{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Quad{}, err
	}
	o, err := p.term()
	if err != nil {
		return Quad{}, err
	}
	p.skipWS()
	var g Term
	if !p.eof() && p.s[p.pos] != '.' {
		g, err = p.term()
		if err != nil {
			return Quad{}, err
		}
	}
	p.skipWS()
	if p.eof() || p.s[p.pos] != '.' {
		return Quad{}, p.errf("expected terminating '.'")
	}
	p.pos++
	p.skipWS()
	if !p.eof() && !strings.HasPrefix(p.s[p.pos:], "#") {
		return Quad{}, p.errf("trailing content after '.'")
	}
	q := Quad{S: s, P: pr, O: o, G: g}
	if err := q.Triple().Validate(); err != nil {
		return Quad{}, p.errf("%v", err)
	}
	return q, nil
}

// term parses one N-Triples term at the current position.
func (p *lineParser) term() (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, p.errf("unexpected end of line, expected term")
	}
	switch p.s[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, p.errf("unexpected character %q", p.s[p.pos])
	}
}

// iri parses an IRIREF. The fast path slices the input directly —
// most real-world IRIs contain no escapes — and only an escape
// triggers the decoding slow path. Returned terms may alias the input
// string; holders that outlive the line clone what they retain.
func (p *lineParser) iri() (Term, error) {
	p.pos++ // consume '<'
	// One vectorized IndexByte finds the terminator and one IndexAny
	// vets the span, instead of a byte-at-a-time switch.
	rest := p.s[p.pos:]
	end := strings.IndexByte(rest, '>')
	stop := end
	if stop < 0 {
		stop = len(rest)
	}
	if j := strings.IndexAny(rest[:stop], "\\ <\""); j >= 0 {
		if rest[j] == '\\' {
			start := p.pos
			p.pos += j
			return p.iriSlow(start)
		}
		p.pos += j
		return Term{}, p.errf("illegal character %q in IRI", rest[j])
	}
	if end < 0 {
		p.pos = len(p.s)
		return Term{}, p.errf("unterminated IRI")
	}
	v := rest[:end]
	p.pos += end + 1
	return NewIRI(v), nil
}

// iriSlow decodes an IRI containing escapes; p.pos points at the
// first backslash and start at the first IRI character.
func (p *lineParser) iriSlow(start int) (Term, error) {
	var b strings.Builder
	b.WriteString(p.s[start:p.pos])
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch c {
		case '>':
			p.pos++
			return NewIRI(b.String()), nil
		case '\\':
			r, err := p.unescape()
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
		default:
			if c == ' ' || c == '<' || c == '"' {
				return Term{}, p.errf("illegal character %q in IRI", c)
			}
			b.WriteByte(c)
			p.pos++
		}
	}
	return Term{}, p.errf("unterminated IRI")
}

func (p *lineParser) blank() (Term, error) {
	if !strings.HasPrefix(p.s[p.pos:], "_:") {
		return Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.s) && isBlankLabelChar(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.s[start:p.pos]), nil
}

func isBlankLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}

// literal parses a quoted literal plus optional language tag or
// datatype. Like iri, the lexical form is sliced from the input when
// it contains no escapes.
func (p *lineParser) literal() (Term, error) {
	p.pos++ // consume opening quote
	start := p.pos
	var lex string
	// Vectorized scans for the closing quote and the first escape
	// replace the byte-at-a-time loop; an escape before the close (or
	// before end of line) routes through the decoding slow path.
	rest := p.s[start:]
	end := strings.IndexByte(rest, '"')
	bs := strings.IndexByte(rest, '\\')
	switch {
	case bs >= 0 && (end < 0 || bs < end):
		p.pos = start + bs
		var err error
		if lex, err = p.literalSlow(start); err != nil {
			return Term{}, err
		}
	case end < 0:
		p.pos = len(p.s)
		return Term{}, p.errf("unterminated literal")
	default:
		lex = rest[:end]
		p.pos = start + end + 1
	}
	if p.pos < len(p.s) && p.s[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && (isAlphaNum(p.s[p.pos]) || p.s[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, p.s[start:p.pos]), nil
	}
	if strings.HasPrefix(p.s[p.pos:], "^^") {
		p.pos += 2
		if p.eof() || p.s[p.pos] != '<' {
			return Term{}, p.errf("expected datatype IRI after ^^")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value()), nil
	}
	return NewLiteral(lex), nil
}

// literalSlow decodes a lexical form containing escapes; p.pos points
// at the first backslash and start at the character after the opening
// quote. It consumes through the closing quote.
func (p *lineParser) literalSlow(start int) (string, error) {
	var b strings.Builder
	b.WriteString(p.s[start:p.pos])
	for {
		if p.pos >= len(p.s) {
			return "", p.errf("unterminated literal")
		}
		c := p.s[p.pos]
		if c == '"' {
			p.pos++
			return b.String(), nil
		}
		if c == '\\' {
			r, err := p.unescape()
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
}

func isAlphaNum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// unescape consumes a backslash escape starting at p.pos (which must
// point at the backslash) and returns the decoded rune.
func (p *lineParser) unescape() (rune, error) {
	p.pos++ // consume backslash
	if p.eof() {
		return 0, p.errf("dangling escape")
	}
	c := p.s[p.pos]
	p.pos++
	switch c {
	case 't':
		return '\t', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u', 'U':
		n := 4
		if c == 'U' {
			n = 8
		}
		if p.pos+n > len(p.s) {
			return 0, p.errf("truncated \\%c escape", c)
		}
		v, err := strconv.ParseUint(p.s[p.pos:p.pos+n], 16, 32)
		if err != nil {
			return 0, p.errf("invalid \\%c escape: %v", c, err)
		}
		p.pos += n
		return rune(v), nil
	default:
		return 0, p.errf("unknown escape \\%c", c)
	}
}

// NQuadsWriter streams triples/quads in N-Quads syntax through one
// buffered writer and one reused line buffer, so serializing a dump
// costs no per-quad allocation. Call Flush once after the last write.
type NQuadsWriter struct {
	bw  *bufio.Writer
	buf []byte
	n   int
}

// NewNQuadsWriter wraps w.
func NewNQuadsWriter(w io.Writer) *NQuadsWriter {
	return &NQuadsWriter{bw: bufio.NewWriterSize(w, 64*1024)}
}

// WriteQuad serializes one quad (plus newline).
func (nw *NQuadsWriter) WriteQuad(q Quad) error {
	nw.buf = AppendQuad(nw.buf[:0], q)
	nw.buf = append(nw.buf, '\n')
	nw.n++
	_, err := nw.bw.Write(nw.buf)
	return err
}

// WriteTriple serializes one triple into the default graph.
func (nw *NQuadsWriter) WriteTriple(t Triple) error {
	nw.buf = AppendTriple(nw.buf[:0], t)
	nw.buf = append(nw.buf, '\n')
	nw.n++
	_, err := nw.bw.Write(nw.buf)
	return err
}

// Count returns the number of statements written so far.
func (nw *NQuadsWriter) Count() int { return nw.n }

// Flush drains the underlying buffer.
func (nw *NQuadsWriter) Flush() error { return nw.bw.Flush() }

// WriteNTriples writes triples in N-Triples syntax.
func WriteNTriples(w io.Writer, triples []Triple) error {
	nw := NewNQuadsWriter(w)
	for _, t := range triples {
		if err := nw.WriteTriple(t); err != nil {
			return err
		}
	}
	return nw.Flush()
}

// WriteNQuads writes quads in N-Quads syntax.
func WriteNQuads(w io.Writer, quads []Quad) error {
	nw := NewNQuadsWriter(w)
	for _, q := range quads {
		if err := nw.WriteQuad(q); err != nil {
			return err
		}
	}
	return nw.Flush()
}
