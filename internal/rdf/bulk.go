package rdf

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"
	"unsafe"
)

// Chunked parallel N-Quads parsing: the bulk-ingest path described in
// DESIGN.md §10. Input is split on line boundaries into ~256 KB
// blocks by a producer, parsed by a bounded worker pool, and
// re-sequenced so batches reach the caller in input order with
// line-accurate *ParseError positions — byte-for-byte the same
// semantics as the sequential NTriplesReader, at a fraction of the
// per-line cost (no per-line string copy, zero-copy term slicing).

// DefaultChunkSize is the target block size for chunked parsing:
// large enough that per-chunk coordination (channel hops, one string
// conversion) is noise, small enough to bound reorder-buffer memory.
const DefaultChunkSize = 256 * 1024

// maxLineBytes caps a single line, mirroring the sequential reader's
// bufio.Scanner buffer limit so both paths reject the same inputs.
const maxLineBytes = 16 * 1024 * 1024

// BulkOptions tunes ParseNQuadsChunked. The zero value selects
// DefaultChunkSize and one worker per CPU.
type BulkOptions struct {
	// ChunkSize is the target block size in bytes.
	ChunkSize int
	// Workers bounds the parse worker pool.
	Workers int
}

// BulkStats reports what a chunked parse did, for the ingest metrics.
type BulkStats struct {
	// Chunks and Quads count processed blocks and parsed statements.
	Chunks int
	Quads  int
	// Workers is the pool size used.
	Workers int
	// ParseNs sums time spent inside parse workers; WallNs is the
	// end-to-end duration. ParseNs/(WallNs*Workers) approximates
	// parse-worker utilization.
	ParseNs int64
	WallNs  int64
}

// Utilization returns the fraction of worker capacity spent parsing
// (0 when nothing ran).
func (s BulkStats) Utilization() float64 {
	if s.WallNs <= 0 || s.Workers <= 0 {
		return 0
	}
	u := float64(s.ParseNs) / (float64(s.WallNs) * float64(s.Workers))
	if u > 1 {
		u = 1
	}
	return u
}

// chunk is one line-aligned block of input.
type chunk struct {
	seq  int
	base int // 1-based line number of the chunk's first line
	data []byte
}

// parsed is one worker's output for a chunk. quads holds every
// statement before the first syntax error (if any), matching what a
// sequential Add-loop would have applied before stopping. data is the
// chunk's buffer, which the quads alias; it may be recycled only once
// the batch is dead (after emit returns).
type parsed struct {
	seq     int
	quads   []Quad
	data    []byte
	err     error
	parseNs int64
}

// ParseNQuadsChunked reads N-Quads (or N-Triples) from r, parses in
// parallel, and calls emit with consecutive batches in input order.
// Each batch is one chunk's statements; emit runs on the caller's
// goroutine. A batch — and the terms inside it, which may alias the
// chunk's backing string — is only guaranteed valid during the emit
// call; callers retaining terms beyond it should Clone them.
//
// On malformed input every statement preceding the first bad line is
// emitted first and the returned error is the same line-positioned
// *ParseError the sequential reader reports. emit returning an error
// stops the parse and returns that error.
func ParseNQuadsChunked(r io.Reader, opts BulkOptions, emit func([]Quad) error) (BulkStats, error) {
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		// A one-worker pool is the whole pipeline on one goroutine
		// anyway (single-CPU hosts, or callers asking for it): run it
		// fused and skip the producer/worker/collector machinery.
		return parseNQuadsFused(r, chunkSize, emit)
	}
	stats := BulkStats{Workers: workers}
	start := time.Now()

	jobs := make(chan chunk, workers)
	results := make(chan parsed, workers)
	done := make(chan struct{})

	// Freelists: chunk buffers and quads slices both cycle back from
	// the collector once emit has returned and the batch — whose terms
	// alias the buffer — is dead (the documented contract). Steady-state
	// ingest then allocates nothing per chunk beyond what the store
	// retains.
	bufPool := make(chan []byte, workers+2)
	quadsPool := make(chan []Quad, workers+2)

	// Producer: split input into line-aligned blocks.
	var readErr error
	go func() {
		defer close(jobs)
		var carry []byte
		base, seq := 1, 0
		send := func(data []byte) bool {
			select {
			case jobs <- chunk{seq: seq, base: base, data: data}:
				seq++
				base += bytes.Count(data, nl)
				return true
			case <-done:
				return false
			}
		}
		for {
			need := len(carry) + chunkSize
			var buf []byte
			select {
			case b := <-bufPool:
				if cap(b) >= need {
					buf = b[:need]
				} else {
					buf = make([]byte, need)
				}
			default:
				buf = make([]byte, need)
			}
			// carry may alias a recycled buffer's own tail (the collector
			// returns a buffer once its batch has been emitted, while the
			// producer still carries its unterminated last line); copy is
			// memmove-safe for that overlap and nothing else writes the
			// region before this point.
			copy(buf, carry)
			n, rerr := io.ReadFull(r, buf[len(carry):])
			buf = buf[:len(carry)+n]
			eof := rerr == io.EOF || rerr == io.ErrUnexpectedEOF
			if rerr != nil && !eof {
				readErr = rerr
				return
			}
			cut := bytes.LastIndexByte(buf, '\n')
			if cut < 0 {
				if !eof {
					if len(buf) >= maxLineBytes {
						readErr = fmt.Errorf("rdf: line longer than %d bytes: %w", maxLineBytes, bufio.ErrTooLong)
						return
					}
					carry = buf // grow until a newline shows up
					continue
				}
				if len(buf) > 0 {
					send(buf)
				}
				return
			}
			if !send(buf[:cut+1]) {
				return
			}
			carry = buf[cut+1:]
			if eof {
				if len(carry) > 0 {
					send(carry)
				}
				return
			}
		}
	}()

	// Workers: parse blocks concurrently.
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for c := range jobs {
				var quads []Quad
				select {
				case quads = <-quadsPool:
					quads = quads[:0]
				default:
					quads = make([]Quad, 0, len(c.data)/64+1)
				}
				p := parseChunk(c, quads)
				select {
				case results <- p:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector (caller goroutine): re-sequence and emit in order.
	pending := make(map[int]parsed, workers)
	next := 0
	var firstErr error
	for p := range results {
		stats.Chunks++
		stats.ParseNs += p.parseNs
		pending[p.seq] = p
		for firstErr == nil {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if len(q.quads) > 0 {
				stats.Quads += len(q.quads)
				if err := emit(q.quads); err != nil {
					firstErr = err
					break
				}
			}
			// The batch is dead once emit returns; both the quads slice
			// and the chunk buffer its terms alias can be recycled.
			select {
			case quadsPool <- q.quads:
			default:
			}
			select {
			case bufPool <- q.data:
			default:
			}
			if q.err != nil {
				firstErr = q.err
			}
		}
		if firstErr != nil {
			close(done)
			for range results { // unblock workers, then exit
			}
			break
		}
	}
	stats.WallNs = time.Since(start).Nanoseconds()
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, readErr
}

var nl = []byte{'\n'}

// parseNQuadsFused is the one-worker degenerate of ParseNQuadsChunked:
// identical chunking, parsing and emit semantics, but everything runs
// on the caller's goroutine with one reused read buffer and one reused
// batch slice — no channels, no reorder buffer.
func parseNQuadsFused(r io.Reader, chunkSize int, emit func([]Quad) error) (BulkStats, error) {
	stats := BulkStats{Workers: 1}
	start := time.Now()
	ret := func(err error) (BulkStats, error) {
		stats.WallNs = time.Since(start).Nanoseconds()
		return stats, err
	}
	var buf, carry []byte
	var quads []Quad
	base := 1
	process := func(data []byte) error {
		p := parseChunk(chunk{base: base, data: data}, quads[:0])
		base += bytes.Count(data, nl)
		stats.Chunks++
		stats.ParseNs += p.parseNs
		quads = p.quads[:0] // keep grown capacity for the next chunk
		if len(p.quads) > 0 {
			stats.Quads += len(p.quads)
			if err := emit(p.quads); err != nil {
				return err
			}
		}
		return p.err
	}
	for {
		need := len(carry) + chunkSize
		if cap(buf) < need {
			buf = make([]byte, need)
		} else {
			buf = buf[:need]
		}
		copy(buf, carry)
		n, rerr := io.ReadFull(r, buf[len(carry):])
		buf = buf[:len(carry)+n]
		eof := rerr == io.EOF || rerr == io.ErrUnexpectedEOF
		if rerr != nil && !eof {
			return ret(rerr)
		}
		cut := bytes.LastIndexByte(buf, '\n')
		if cut < 0 {
			if !eof {
				if len(buf) >= maxLineBytes {
					return ret(fmt.Errorf("rdf: line longer than %d bytes: %w", maxLineBytes, bufio.ErrTooLong))
				}
				carry = append(carry[:0], buf...)
				continue
			}
			if len(buf) > 0 {
				if err := process(buf); err != nil {
					return ret(err)
				}
			}
			return ret(nil)
		}
		if err := process(buf[:cut+1]); err != nil {
			return ret(err)
		}
		carry = append(carry[:0], buf[cut+1:]...)
		if eof {
			if len(carry) > 0 {
				if err := process(carry); err != nil {
					return ret(err)
				}
			}
			return ret(nil)
		}
	}
}

// parseChunk parses one block line by line into quads (a recycled,
// zero-length slice). The block is viewed as a string without copying
// — lines slice that view, and terms slice the lines, so the emitted
// quads alias c.data. That is exactly the documented batch lifetime:
// the buffer is only recycled once emit has returned and the batch is
// dead. Steady state parses a chunk with zero allocations.
func parseChunk(c chunk, quads []Quad) parsed {
	t0 := time.Now()
	if len(c.data) == 0 {
		return parsed{seq: c.seq, quads: quads, data: c.data}
	}
	s := unsafe.String(&c.data[0], len(c.data))
	lineno := c.base - 1
	for len(s) > 0 {
		lineno++
		var line string
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			line, s = s[:i], s[i+1:]
		} else {
			line, s = s, ""
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseNQuadLine(line, lineno)
		if err != nil {
			return parsed{seq: c.seq, quads: quads, data: c.data, err: err, parseNs: time.Since(t0).Nanoseconds()}
		}
		quads = append(quads, q)
	}
	return parsed{seq: c.seq, quads: quads, data: c.data, parseNs: time.Since(t0).Nanoseconds()}
}
