package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxflowPackages are the packages whose exported API models calls to
// remote LOD endpoints (SPARQL endpoints, resolvers, federation
// peers, the web tier). Exported functions there that block on the
// network — or simulate the round trip with a sleep — must accept a
// context.Context so timeouts and cancellation can be threaded
// through.
var ctxflowPackages = []string{
	"lodify/internal/resolver",
	"lodify/internal/sparql",
	"lodify/internal/federation",
	"lodify/internal/web",
}

// CtxFlow flags exported functions in the remote-endpoint packages
// that perform (or model) an endpoint round trip without taking a
// context.Context: direct *http.Client calls, package-level http
// request helpers, and time.Sleep latency simulation. It also flags
// http.NewRequest, which should be http.NewRequestWithContext.
// http.Handler-shaped functions are exempt — they get their context
// from the request.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags exported remote-endpoint functions without a context.Context parameter",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	inScope := false
	for _, p := range ctxflowPackages {
		if pass.Path == p || strings.HasPrefix(pass.Path, p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkNewRequest(pass, fd)
			if !fd.Name.IsExported() || isHandlerShaped(pass, fd) || hasContextParam(pass, fd) {
				continue
			}
			if pos, kind := findRemoteCall(pass, fd); kind != "" {
				pass.Reportf(pos,
					"exported %s %s performs a remote endpoint call (%s) but has no context.Context parameter",
					funcKind(fd), fd.Name.Name, kind)
			}
		}
	}
}

func funcKind(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method"
	}
	return "function"
}

func hasContextParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, f := range fd.Type.Params.List {
		if tv, ok := pass.Info.Types[f.Type]; ok && isNamedType(tv.Type, "context", "Context") {
			return true
		}
	}
	return false
}

// isHandlerShaped reports the (http.ResponseWriter, *http.Request)
// signature: handlers take their context from the request.
func isHandlerShaped(pass *Pass, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) != 2 {
		return false
	}
	t0, ok0 := pass.Info.Types[params.List[0].Type]
	t1, ok1 := pass.Info.Types[params.List[1].Type]
	if !ok0 || !ok1 {
		return false
	}
	if !isNamedType(t0.Type, "net/http", "ResponseWriter") {
		return false
	}
	ptr, ok := t1.Type.(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), "net/http", "Request")
}

// findRemoteCall scans the body for a direct remote round trip and
// returns its position and a human-readable label.
func findRemoteCall(pass *Pass, fd *ast.FuncDecl) (pos token.Pos, kind string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		// Do not descend into function literals: goroutine bodies are
		// still launched (and waited on) by this function, so their
		// round trips count against it.
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "net/http":
			switch fn.Name() {
			case "Do", "Get", "Post", "PostForm", "Head":
				pos, kind = call.Pos(), "net/http "+fn.Name()
				return false
			}
		case "time":
			if fn.Name() == "Sleep" {
				pos, kind = call.Pos(), "time.Sleep latency simulation"
				return false
			}
		}
		return true
	})
	return pos, kind
}

// checkNewRequest flags http.NewRequest anywhere in the function —
// requests must carry the caller's context.
func checkNewRequest(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && calleeIsPkgFunc(pass.Info, call, "net/http", "NewRequest") {
			pass.Reportf(call.Pos(), "http.NewRequest drops the caller's context; use http.NewRequestWithContext")
		}
		return true
	})
}
