package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Intraprocedural forward dataflow (DESIGN.md §11). The PR-3/PR-4
// performance work introduced contracts that pure AST matching cannot
// check: chunk-batch quads alias a recycled parse buffer (bufescape),
// store read leases must reach Release on every path and must not be
// held across blocking calls (leasehold), and query-local ids must
// never flow into store ID lookups (localid). All three reduce to the
// same question — "where does this value go?" — so they share one
// engine: a per-function abstract interpretation that tracks a small
// taint bitset per variable through assignments, composite literals,
// function-literal captures, channel sends and returns, joining state
// at branches and iterating loops to a (bounded) fixpoint.
//
// The engine is deliberately intraprocedural: calls are events the
// client interprets (source, sanitizer, sink or no-op via flowHooks),
// never descended into. That keeps the analysis linear in the syntax
// and the false-positive surface auditable.

// taint is a small provenance bitset. Each analyzer defines its own
// bit meanings; the engine only unions and compares them.
type taint uint32

// escapeKind classifies where a tainted value left the analyzed scope.
type escapeKind int

const (
	// escapeAssignCaptured is an assignment to a variable declared
	// outside the analyzed function (captured or package-level),
	// including the `captured = append(captured, v)` idiom.
	escapeAssignCaptured escapeKind = iota
	// escapeStoreOutside is a store through a field, index or pointer
	// whose root is declared outside the analyzed function.
	escapeStoreOutside
	// escapeSend is a channel send.
	escapeSend
	// escapeReturn is a return from the analyzed function itself
	// (returns of nested function literals are not escapes).
	escapeReturn
	// escapeGoroutine is a tainted value handed to a go statement.
	escapeGoroutine
)

// String names the escape for diagnostics.
func (k escapeKind) String() string {
	switch k {
	case escapeAssignCaptured:
		return "assigned to a captured variable"
	case escapeStoreOutside:
		return "stored outside the callback"
	case escapeSend:
		return "sent on a channel"
	case escapeReturn:
		return "returned"
	case escapeGoroutine:
		return "passed to a goroutine"
	default:
		return "escaped"
	}
}

// flowHooks is the client contract. Every hook is optional.
type flowHooks struct {
	// callResult computes the taint of a call's result from the
	// receiver and argument taints. The engine has already handled
	// conversions and the append builtin. A nil hook means calls
	// return untainted values.
	callResult func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint) taint
	// binaryResult refines the taint of a binary expression; the
	// default is the union of the operand taints. Used by localid to
	// recognize `x | localIDBit` minting and `x &^ localIDBit` masking.
	binaryResult func(f *funcFlow, e *ast.BinaryExpr, x, y taint) taint
	// onCall fires for every evaluated call, after its operands.
	// deferred marks calls inside a defer statement.
	onCall func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint, deferred bool)
	// onBind fires when taint is bound to a named object by an
	// assignment or declaration (leasehold records acquire sites).
	onBind func(f *funcFlow, obj types.Object, rhs ast.Expr, t taint)
	// maskBind filters the taint stored for obj (bufescape drops taint
	// for types that cannot alias the parse buffer).
	maskBind func(f *funcFlow, obj types.Object, t taint) taint
	// onEscape fires when a possibly-tainted value reaches an escape
	// sink; t may be 0 when only the sink itself matters.
	onEscape func(f *funcFlow, kind escapeKind, e ast.Expr, pos token.Pos, t taint)
	// onChanOp fires for channel sends and receives (blocking points).
	onChanOp func(f *funcFlow, pos token.Pos)
	// onCondFalse fires when control flow enters a path on which cond
	// is known false: the else branch of an if, or a later clause of a
	// tagless switch. Clients refine taints for flag-test idioms
	// (localid clears the local bit when `id&localIDBit != 0` failed).
	onCondFalse func(f *funcFlow, cond ast.Expr)
	// onExit fires at each return of the analyzed function, at each
	// panic call, and once at the fall-off end of the body. ret/call
	// are nil when not applicable.
	onExit func(f *funcFlow, pos token.Pos)
}

// funcFlow is one function (or function literal) under analysis.
type funcFlow struct {
	pass  *Pass
	hooks *flowHooks
	// root spans the analyzed function; objects declared inside it are
	// "local", everything else is captured.
	root ast.Node
	// state maps variables to their current taint along this path.
	state map[types.Object]taint
	// depth counts nested function literals (their returns are not
	// escapes of the root); asyncDepth counts literals being walked as
	// goroutine bodies (their blocking operations do not block the
	// root).
	depth      int
	asyncDepth int
	// reported dedups diagnostics across loop re-iterations.
	reported map[string]bool
}

// runFlow analyzes fn (a *ast.FuncDecl or *ast.FuncLit) with the given
// hooks. seed pre-taints objects (e.g. the chunk-batch parameter).
func runFlow(pass *Pass, fn ast.Node, hooks *flowHooks, seed map[types.Object]taint) {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}
	f := &funcFlow{
		pass:     pass,
		hooks:    hooks,
		root:     fn,
		state:    map[types.Object]taint{},
		reported: map[string]bool{},
	}
	for obj, t := range seed {
		f.state[obj] = t
	}
	terminated := f.walkStmt(body)
	if !terminated && hooks.onExit != nil {
		hooks.onExit(f, body.Rbrace)
	}
}

// Reportf reports a finding once: loop fixpoint iteration and repeated
// literal walks revisit the same syntax, so findings dedup on position
// and message.
func (f *funcFlow) Reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d\x00%s", pos, msg)
	if f.reported[key] {
		return
	}
	f.reported[key] = true
	f.pass.Reportf(pos, "%s", msg)
}

// objOf resolves an identifier to its object.
func (f *funcFlow) objOf(id *ast.Ident) types.Object {
	if obj := f.pass.Info.ObjectOf(id); obj != nil {
		return obj
	}
	return nil
}

// isLocal reports whether obj is declared inside the analyzed
// function (parameters and receivers included).
func (f *funcFlow) isLocal(obj types.Object) bool {
	return obj != nil && obj.Pos() >= f.root.Pos() && obj.Pos() <= f.root.End()
}

// anyTainted reports whether any tracked object carries the mask.
func (f *funcFlow) anyTainted(mask taint) bool {
	for _, t := range f.state {
		if t&mask != 0 {
			return true
		}
	}
	return false
}

// each visits the current state.
func (f *funcFlow) each(fn func(obj types.Object, t taint)) {
	for obj, t := range f.state {
		fn(obj, t)
	}
}

// set overwrites an object's taint (typestate transitions).
func (f *funcFlow) set(obj types.Object, t taint) { f.state[obj] = t }

// get reads an object's taint.
func (f *funcFlow) get(obj types.Object) taint { return f.state[obj] }

// ---- state lattice ----

func cloneState(s map[types.Object]taint) map[types.Object]taint {
	out := make(map[types.Object]taint, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinState unions b into a (may-analysis: a bit set on any incoming
// path stays set).
func joinState(a, b map[types.Object]taint) {
	for k, v := range b {
		a[k] |= v
	}
}

// ---- statement walk ----

// walkStmt interprets one statement and reports whether it terminates
// the current path (return or panic — every subsequent statement in
// the block is unreachable).
func (f *funcFlow) walkStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			if f.walkStmt(st) {
				return true
			}
		}
	case *ast.ExprStmt:
		f.eval(s.X)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && f.isPanic(call) {
			return true
		}
	case *ast.AssignStmt:
		f.walkAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t taint
					if i < len(vs.Values) {
						t = f.eval(vs.Values[i])
					} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
						t = f.eval(vs.Values[0])
					}
					f.bindIdent(name, vs.Values, t)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			f.walkStmt(s.Init)
		}
		f.eval(s.Cond)
		pre := cloneState(f.state)
		thenTerm := f.walkStmt(s.Body)
		thenState := f.state
		f.state = pre
		// The else branch (and, when then terminates, the fall-through)
		// runs with the condition refuted.
		if f.hooks.onCondFalse != nil {
			f.hooks.onCondFalse(f, s.Cond)
		}
		elseTerm := false
		if s.Else != nil {
			elseTerm = f.walkStmt(s.Else)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			// only the else path continues; f.state already holds it
		case elseTerm:
			f.state = thenState
		default:
			joinState(f.state, thenState)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			f.walkStmt(s.Init)
		}
		f.loop(func() {
			if s.Cond != nil {
				f.eval(s.Cond)
			}
			f.walkStmt(s.Body)
			if s.Post != nil {
				f.walkStmt(s.Post)
			}
		})
	case *ast.RangeStmt:
		t := f.eval(s.X)
		// Ranging over a channel is a blocking receive per iteration.
		if tv, ok := f.pass.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && f.hooks.onChanOp != nil {
				f.hooks.onChanOp(f, s.X.Pos())
			}
		}
		// Range variables alias the container's elements.
		if s.Key != nil {
			if id, ok := s.Key.(*ast.Ident); ok {
				f.bindIdent(id, nil, t)
			}
		}
		if s.Value != nil {
			if id, ok := s.Value.(*ast.Ident); ok {
				f.bindIdent(id, nil, t)
			}
		}
		f.loop(func() { f.walkStmt(s.Body) })
	case *ast.SwitchStmt:
		if s.Init != nil {
			f.walkStmt(s.Init)
		}
		if s.Tag != nil {
			f.eval(s.Tag)
		}
		f.walkCases(s.Body, hasDefaultClause(s.Body), s.Tag == nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			f.walkStmt(s.Init)
		}
		f.walkStmt(s.Assign)
		f.walkCases(s.Body, hasDefaultClause(s.Body), false)
	case *ast.SelectStmt:
		f.walkCases(s.Body, true, false)
	case *ast.CommClause:
		if s.Comm != nil {
			f.walkStmt(s.Comm)
		}
		for _, st := range s.Body {
			if f.walkStmt(st) {
				return true
			}
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			f.eval(e)
		}
		for _, st := range s.Body {
			if f.walkStmt(st) {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t := f.eval(r)
			if f.depth == 0 && f.hooks.onEscape != nil {
				f.hooks.onEscape(f, escapeReturn, r, r.Pos(), t)
			}
		}
		if f.depth == 0 && f.hooks.onExit != nil {
			f.hooks.onExit(f, s.Pos())
		}
		return true
	case *ast.SendStmt:
		f.eval(s.Chan)
		t := f.eval(s.Value)
		if f.hooks.onChanOp != nil {
			f.hooks.onChanOp(f, s.Arrow)
		}
		if f.hooks.onEscape != nil {
			f.hooks.onEscape(f, escapeSend, s.Value, s.Arrow, t)
		}
	case *ast.DeferStmt:
		f.evalCall(s.Call, true)
	case *ast.GoStmt:
		// The goroutine outlives the current statement: everything the
		// call closes over or receives escapes the caller's control.
		f.asyncDepth++
		var ft taint
		switch fun := ast.Unparen(s.Call.Fun).(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				if _, isPkg := f.pass.Info.ObjectOf(id).(*types.PkgName); !isPkg {
					ft |= f.eval(fun.X)
				}
			} else {
				ft |= f.eval(fun.X)
			}
		default:
			ft |= f.eval(s.Call.Fun)
		}
		args := make([]taint, len(s.Call.Args))
		for i, a := range s.Call.Args {
			args[i] = f.eval(a)
			ft |= args[i]
		}
		f.asyncDepth--
		if f.hooks.onCall != nil {
			f.hooks.onCall(f, s.Call, ft, args, false)
		}
		if f.hooks.onEscape != nil {
			f.hooks.onEscape(f, escapeGoroutine, s.Call, s.Call.Pos(), ft)
		}
	case *ast.IncDecStmt:
		f.eval(s.X)
	case *ast.LabeledStmt:
		return f.walkStmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// break/continue/goto: joined conservatively by the enclosing
		// loop's fixpoint.
	}
	return false
}

// loop runs body to a bounded fixpoint: taints only grow across
// iterations (the join is a union), so a few passes reach the loop's
// transitive propagation; the bound caps pathological cases. The
// pre-state joins in because the loop may run zero times.
func (f *funcFlow) loop(body func()) {
	pre := cloneState(f.state)
	for i := 0; i < 3; i++ {
		body()
		joinState(f.state, pre)
	}
}

// walkCases joins all clause states; withoutMatch adds the fall-through
// path when no clause is guaranteed to run. In a tagless switch each
// clause runs knowing every earlier condition failed (onCondFalse).
func (f *funcFlow) walkCases(body *ast.BlockStmt, hasDefault, tagless bool) {
	pre := cloneState(f.state)
	joined := map[types.Object]taint{}
	anyFallthrough := false
	var priorConds []ast.Expr
	for _, cl := range body.List {
		f.state = cloneState(pre)
		if tagless && f.hooks.onCondFalse != nil {
			for _, c := range priorConds {
				f.hooks.onCondFalse(f, c)
			}
		}
		if !f.walkStmt(cl) {
			anyFallthrough = true
		}
		joinState(joined, f.state)
		if tagless {
			if cc, ok := cl.(*ast.CaseClause); ok {
				priorConds = append(priorConds, cc.List...)
			}
		}
	}
	if !hasDefault || !anyFallthrough || len(body.List) == 0 {
		joinState(joined, pre)
	}
	f.state = joined
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// walkAssign interprets an assignment: identifiers update the state,
// stores through selectors/indexes/pointers either taint the local
// container or escape, depending on where the root is declared.
func (f *funcFlow) walkAssign(s *ast.AssignStmt) {
	// Right-hand taints. A multi-value call spreads its single taint
	// over every left-hand side.
	taints := make([]taint, len(s.Lhs))
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		t := f.eval(s.Rhs[0])
		for i := range taints {
			taints[i] = t
		}
	} else {
		for i := range s.Lhs {
			if i < len(s.Rhs) {
				taints[i] = f.eval(s.Rhs[i])
			}
		}
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		f.store(lhs, rhs, taints[i])
	}
}

// store binds taint t to the lvalue lhs.
func (f *funcFlow) store(lhs, rhs ast.Expr, t taint) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := f.objOf(l)
		if obj == nil {
			return
		}
		if !f.isLocal(obj) {
			if f.hooks.onEscape != nil {
				val := rhs
				if val == nil {
					val = lhs
				}
				f.hooks.onEscape(f, escapeAssignCaptured, val, lhs.Pos(), t)
			}
		}
		f.bind(obj, rhs, t)
	default:
		// Store through a field, index or pointer: find the root. The
		// escape hook receives the escaping value (rhs) so typestate
		// clients can untrack a transferred object.
		val := rhs
		if val == nil {
			val = lhs
		}
		root := rootIdent(lhs)
		if root == nil {
			if t != 0 && f.hooks.onEscape != nil {
				f.hooks.onEscape(f, escapeStoreOutside, val, lhs.Pos(), t)
			}
			return
		}
		obj := f.objOf(root)
		if f.isLocal(obj) {
			// The container now holds the value; if the container later
			// escapes, the taint goes with it.
			if t != 0 && obj != nil {
				f.bind(obj, rhs, f.state[obj]|t)
			}
			return
		}
		if f.hooks.onEscape != nil {
			f.hooks.onEscape(f, escapeStoreOutside, val, lhs.Pos(), t)
		}
	}
}

// bindIdent is store for declaration names.
func (f *funcFlow) bindIdent(id *ast.Ident, _ any, t taint) {
	if id.Name == "_" {
		return
	}
	if obj := f.objOf(id); obj != nil {
		f.bind(obj, nil, t)
	}
}

func (f *funcFlow) bind(obj types.Object, rhs ast.Expr, t taint) {
	if f.hooks.maskBind != nil {
		t = f.hooks.maskBind(f, obj, t)
	}
	f.state[obj] = t
	if f.hooks.onBind != nil {
		f.hooks.onBind(f, obj, rhs, t)
	}
}

// rootIdent descends selector/index/star/slice chains to the base
// identifier, or nil when the base is not a plain variable.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ---- expression evaluation ----

// eval computes the taint of an expression, firing call/chan hooks for
// everything it visits.
func (f *funcFlow) eval(e ast.Expr) taint {
	if e == nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := f.objOf(e); obj != nil {
			return f.state[obj]
		}
	case *ast.ParenExpr:
		return f.eval(e.X)
	case *ast.CallExpr:
		return f.evalCall(e, false)
	case *ast.SelectorExpr:
		// Package-qualified names carry no value taint.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := f.pass.Info.ObjectOf(id).(*types.PkgName); isPkg {
				return 0
			}
		}
		return f.eval(e.X)
	case *ast.IndexExpr:
		// Either an index operation or a generic instantiation; both
		// propagate the base taint.
		f.eval(e.Index)
		return f.eval(e.X)
	case *ast.IndexListExpr:
		return f.eval(e.X)
	case *ast.SliceExpr:
		f.eval(e.Low)
		f.eval(e.High)
		f.eval(e.Max)
		return f.eval(e.X)
	case *ast.StarExpr:
		return f.eval(e.X)
	case *ast.UnaryExpr:
		t := f.eval(e.X)
		if e.Op == token.ARROW {
			if f.hooks.onChanOp != nil {
				f.hooks.onChanOp(f, e.Pos())
			}
		}
		return t
	case *ast.BinaryExpr:
		x, y := f.eval(e.X), f.eval(e.Y)
		if f.hooks.binaryResult != nil {
			return f.hooks.binaryResult(f, e, x, y)
		}
		return x | y
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			t |= f.eval(el)
		}
		return t
	case *ast.KeyValueExpr:
		f.eval(e.Key)
		return f.eval(e.Value)
	case *ast.TypeAssertExpr:
		return f.eval(e.X)
	case *ast.FuncLit:
		// The literal's value carries the taint of everything it
		// captures; its body executes under the root's locality (its
		// own locals sit inside the root span).
		t := f.captureTaint(e)
		f.depth++
		f.walkStmt(e.Body)
		f.depth--
		return t
	}
	return 0
}

// captureTaint unions the current taints of the free variables a
// function literal closes over.
func (f *funcFlow) captureTaint(lit *ast.FuncLit) taint {
	var t taint
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := f.pass.Info.ObjectOf(id)
		if v, ok := obj.(*types.Var); ok {
			if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
				t |= f.state[obj]
			}
		}
		return true
	})
	return t
}

// evalCall evaluates a call's operands and produces its result taint.
func (f *funcFlow) evalCall(call *ast.CallExpr, deferred bool) taint {
	// Type conversion: the value passes through unchanged.
	if tv, ok := f.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		var t taint
		for _, a := range call.Args {
			t |= f.eval(a)
		}
		return t
	}
	// Receiver taint: method calls via selector on a value; plain
	// identifiers cover calls through (possibly captured) func values.
	var recv taint
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isPkg := f.pass.Info.ObjectOf(id).(*types.PkgName); !isPkg {
				recv = f.eval(fun.X)
			}
		} else {
			recv = f.eval(fun.X)
		}
	default:
		recv = f.eval(call.Fun)
	}
	args := make([]taint, len(call.Args))
	for i, a := range call.Args {
		args[i] = f.eval(a)
	}
	// Builtins the engine interprets directly.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := f.pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				var t taint
				for _, a := range args {
					t |= a
				}
				return t
			case "panic":
				if f.depth == 0 && f.hooks.onExit != nil {
					f.hooks.onExit(f, call.Pos())
				}
				return 0
			case "len", "cap", "make", "new", "delete", "copy", "clear",
				"min", "max", "print", "println", "recover", "complex",
				"real", "imag":
				return 0
			}
		}
	}
	var t taint
	if f.hooks.callResult != nil {
		t = f.hooks.callResult(f, call, recv, args)
	}
	if f.hooks.onCall != nil {
		f.hooks.onCall(f, call, recv, args, deferred)
	}
	return t
}

// isPanic reports a direct call to the panic builtin.
func (f *funcFlow) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := f.pass.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// ---- shared type predicates for the contract analyzers ----

// namedOrPtr unwraps one pointer level and returns the named type, or
// nil.
func namedOrPtr(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMethodOn reports whether fn is a method whose receiver (after
// pointer unwrapping) is pkgPath.typeName.
func isMethodOn(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOrPtr(sig.Recv().Type())
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == typeName &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
