package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const moduleRoot = "../.."

// want markers sit on the line the diagnostic is expected on:
//
//	bad()          // want "substring of the message"
//	worse()        // want "first" "second"
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

func TestRawIRI(t *testing.T) {
	runFixtureTest(t, []*Analyzer{RawIRI}, "rawiri", "lodify/internal/rawiritest")
}

func TestLockSafe(t *testing.T) {
	runFixtureTest(t, []*Analyzer{LockSafe}, "locksafe", "lodify/internal/locktest")
}

func TestCtxFlow(t *testing.T) {
	runFixtureTest(t, []*Analyzer{CtxFlow}, "ctxflow", "lodify/internal/resolver/ctxfix")
}

func TestErrDrop(t *testing.T) {
	runFixtureTest(t, []*Analyzer{ErrDrop}, "errdrop", "lodify/cmd/fixturecli")
}

func TestBufEscape(t *testing.T) {
	runFixtureTest(t, []*Analyzer{BufEscape}, "bufescape", "lodify/internal/ingestfix")
}

func TestLeaseHold(t *testing.T) {
	runFixtureTest(t, []*Analyzer{LeaseHold}, "leasehold", "lodify/internal/store/leasefix")
}

func TestLocalID(t *testing.T) {
	runFixtureTest(t, []*Analyzer{LocalID}, "localid", "lodify/internal/sparql/localfix")
}

func TestLockOrderFixture(t *testing.T) {
	runFixtureTest(t, []*Analyzer{LockOrder}, "lockorder", "lodify/internal/lockorderfix")
}

func TestGoLeakFixture(t *testing.T) {
	runFixtureTest(t, []*Analyzer{GoLeak}, "goleak", "lodify/internal/goleakfix")
}

// TestAtomicMix covers mixed atomic/plain access detection: struct and
// package-level counters with atomic sites, plain accesses with and
// without the owning lock, accessor helpers judged at their call
// sites, and the typed-atomic / never-atomic negatives.
func TestAtomicMix(t *testing.T) {
	runFixtureTest(t, []*Analyzer{AtomicMix}, "atomicmix", "lodify/internal/obs/mixfix")
}

// TestHookReent covers commit-hook reentrancy against the real store
// package: lock acquisition and store mutation in literal and
// method-value hooks, the goroutine handoff shape, and the nolock
// reviewed exception.
func TestHookReent(t *testing.T) {
	runFixtureTest(t, []*Analyzer{HookReent}, "hookreent", "lodify/internal/store/hookfix")
}

// TestStatsHold covers the per-shard stats leasehold: unlocked and
// RLock-only mutations, derived locals, deferred unexported helpers,
// the sticky lock-acquiring callee shape, delete, and the compliant
// locked/local-merge twins.
func TestStatsHold(t *testing.T) {
	runFixtureTest(t, []*Analyzer{StatsHold}, "statshold", "lodify/internal/store/statsfix")
}

// TestInterproc covers the summary index through generics and method
// values: generic helpers that block or alias (one summary at the
// origin, applied per instantiation), method values stashed vs run,
// and compliant Clone/Release twins for each.
func TestInterproc(t *testing.T) {
	runFixtureTest(t, []*Analyzer{LeaseHold, BufEscape}, "interproc", "lodify/internal/store/interprocfix")
}

// TestGenerics runs the path-independent and resolver-scoped analyzers
// over type-parameterized code: generic receivers and instantiation
// expressions must neither panic nor produce false positives.
func TestGenerics(t *testing.T) {
	runFixtureTest(t, []*Analyzer{LockSafe, CtxFlow}, "generics", "lodify/internal/resolver/generictest")
}

// runFixtureTest loads testdata/<fixture> under importPath, runs the
// analyzers, and checks their diagnostics against the // want markers:
// every diagnostic must be expected, every expectation must fire.
func runFixtureTest(t *testing.T, as []*Analyzer, fixture, importPath string) {
	t.Helper()
	pkg, err := LoadFixture(moduleRoot, filepath.Join("testdata", fixture), importPath)
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s holds no Go files", fixture)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture must type-check: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	type mark struct {
		line int
		want string
	}
	var wants []mark
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
					wants = append(wants, mark{line: line, want: q[1]})
				}
			}
		}
	}
	if len(wants) < 2 {
		t.Fatalf("fixture %s seeds %d violations; need at least 2", fixture, len(wants))
	}

	diags := Run([]*Package{pkg}, as)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		hit := false
		for i, w := range wants {
			if !matched[i] && w.line == d.Line && strings.Contains(d.Message, w.want) {
				matched[i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.File), d.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic on line %d: want message containing %q", w.line, w.want)
		}
	}
}

// TestLoadRepo loads a real module package and checks it arrives
// type-clean with syntax and type info populated.
func TestLoadRepo(t *testing.T) {
	pkgs, err := Load(LoadConfig{ModuleRoot: moduleRoot}, "./internal/rdf")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load matched %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "lodify/internal/rdf" {
		t.Errorf("Path = %q, want lodify/internal/rdf", pkg.Path)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Errorf("type errors: %v", pkg.TypeErrors)
	}
	if len(pkg.Files) == 0 || pkg.Types == nil || pkg.Info == nil {
		t.Errorf("incomplete package: files=%d types=%v", len(pkg.Files), pkg.Types)
	}
}

// TestDiagnosticString pins the file:line:col rendering the CI log
// and editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "rawiri", File: "x.go", Line: 3, Column: 7, Message: "m"}
	if got, want := d.String(), "x.go:3:7: [rawiri] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
