package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed and type-checked module package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files is the parsed syntax, in file-name order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems; analyzers still run
	// on the partial information.
	TypeErrors []error
}

// LoadConfig controls Load.
type LoadConfig struct {
	// ModuleRoot is the directory holding go.mod. Empty means: walk
	// upward from the working directory.
	ModuleRoot string
	// IncludeTests adds _test.go files of the matched packages.
	IncludeTests bool
}

// Load finds, parses and type-checks the module packages matched by
// patterns ("./...", "./internal/...", or plain package directories).
// It is the stdlib-only stand-in for golang.org/x/tools/go/packages:
// package enumeration walks the module tree, and type checking uses
// the go/importer source importer anchored at the module root.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	root := cfg.ModuleRoot
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			return nil, err
		}
	}
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if matchAny(patterns, filepath.ToSlash(rel)) {
			selected = append(selected, dir)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}

	// The source importer resolves module-internal import paths by
	// invoking the go command from Context.Dir; anchor it at the
	// module root so lodlint works from any working directory.
	buildCtx := build.Default
	buildCtx.Dir = root
	restore := build.Default
	build.Default = buildCtx
	defer func() { build.Default = restore }()

	fset := token.NewFileSet()
	loader := &moduleLoader{
		fset:     fset,
		root:     root,
		modPath:  modPath,
		buildCtx: &buildCtx,
		tests:    cfg.IncludeTests,
		cache:    map[string]*Package{},
	}
	loader.base = importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range selected {
		pkg, err := loader.load(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadFixture parses and type-checks a single directory of Go files
// under a caller-chosen import path. It is the fixture-loading hook
// for analyzer tests: testdata packages can impersonate rule-scoped
// paths such as "lodify/cmd/x". moduleRoot anchors resolution of
// lodify/... imports inside the fixtures.
func LoadFixture(moduleRoot, dir, importPath string) (*Package, error) {
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	buildCtx := build.Default
	buildCtx.Dir = root
	restore := build.Default
	build.Default = buildCtx
	defer func() { build.Default = restore }()

	fset := token.NewFileSet()
	loader := &moduleLoader{
		fset:     fset,
		root:     root,
		modPath:  "lodify",
		buildCtx: &buildCtx,
		cache:    map[string]*Package{},
	}
	loader.base = importer.ForCompiler(fset, "source", nil)
	return loader.check(dir, importPath, true)
}

type moduleLoader struct {
	fset     *token.FileSet
	root     string
	modPath  string
	buildCtx *build.Context
	tests    bool
	base     types.Importer
	cache    map[string]*Package
	loading  map[string]bool
}

// Import implements types.Importer: module-internal packages resolve
// through the loader (sharing one type-checked instance per path),
// everything else through the source importer.
func (l *moduleLoader) Import(p string) (*types.Package, error) {
	if p == l.modPath || strings.HasPrefix(p, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(p, l.modPath), "/")
		pkg, err := l.check(filepath.Join(l.root, filepath.FromSlash(rel)), p, l.tests)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files for %s", p)
		}
		return pkg.Types, nil
	}
	return l.base.Import(p)
}

// load type-checks the package in dir under its module import path.
func (l *moduleLoader) load(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	ip := l.modPath
	if rel != "." {
		ip = path.Join(l.modPath, filepath.ToSlash(rel))
	}
	return l.check(dir, ip, l.tests)
}

func (l *moduleLoader) check(dir, importPath string, includeTests bool) (*Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if l.loading == nil {
		l.loading = map[string]bool{}
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFilesIn(l.buildCtx, dir, includeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	// External test packages (package foo_test) cannot be mixed into
	// the main package; keep only the dominant (non-_test-suffixed)
	// package name.
	files = dropExternalTestFiles(files)

	pkg := &Package{Path: importPath, Dir: dir, Fset: l.fset}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	pkg.Files = files
	pkg.Types = tpkg
	pkg.Info = info
	l.cache[importPath] = pkg
	return pkg, nil
}

// goFilesIn lists the buildable .go files of dir, honoring build
// constraints via the build context.
func goFilesIn(ctx *build.Context, dir string, includeTests bool) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil || !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func dropExternalTestFiles(files []*ast.File) []*ast.File {
	base := ""
	for _, f := range files {
		name := f.Name.Name
		if !strings.HasSuffix(name, "_test") {
			base = name
			break
		}
	}
	if base == "" {
		return files
	}
	var out []*ast.File
	for _, f := range files {
		if f.Name.Name == base {
			out = append(out, f)
		}
	}
	return out
}

// packageDirs returns every directory under root holding Go files,
// skipping testdata, vendor and hidden/underscore directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// matchAny implements the supported pattern forms against a
// slash-separated module-relative directory ("." for the root).
func matchAny(patterns []string, rel string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		switch {
		case pat == "...":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case pat == rel:
			return true
		}
	}
	return false
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				rest = unq
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
