package analysis

import "testing"

func TestSpanEnd(t *testing.T) {
	runFixtureTest(t, []*Analyzer{SpanEnd}, "spanend", "lodify/internal/web/spanfix")
}
