package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
)

// Interprocedural function summaries (DESIGN.md §12). The v2 dataflow
// engine treats every call as opaque, so a lease released inside a
// helper, a quad cloned inside a helper, or a buffer stored to a
// global inside a helper were all invisible. The summary pass closes
// that hole without giving up the engine's linearity: every function
// of every loaded package is abstract-interpreted ONCE with its
// parameters as the taint sources, producing a small per-parameter
// effect record; the analyzers then map those records onto their own
// taints at each call site instead of guessing.
//
// Summaries are computed bottom-up over the topologically-ordered
// packages (callgraph.go) and, within a package, iterated to a small
// bounded fixpoint so mutual recursion converges — effects only grow
// across rounds (every field is a union), so three rounds reach any
// realistic call chain and the bound caps pathological ones.

// summaryFormatVersion invalidates cached summaries when the encoding
// or the computation changes shape. v2: HookLocks, MutatesStore,
// MutatesStats and MixPlain joined the record for the v4 analyzers.
const summaryFormatVersion = "lodlint-summary-v2"

// Bit layout of the summary-computation taint. The low bits identify
// which parameter a value derives from; two marker bits track
// fresh-value provenance the analyzers care about (leases, local ids).
const (
	// summaryMaxParam caps the distinguishable parameters; later
	// parameters share the last bit (a sound conflation).
	summaryMaxParam = 11
	// summaryRecvBit marks values derived from the receiver.
	summaryRecvBit uint32 = 1 << 12
	// summaryLeaseBit marks a fresh store read lease minted here.
	summaryLeaseBit uint32 = 1 << 13
	// summaryMintBit marks a freshly minted query-local id.
	summaryMintBit uint32 = 1 << 14

	// summaryParamMask covers all parameter bits plus the receiver bit.
	// (| and - share precedence in Go: the inner parens are load-bearing.)
	summaryParamMask = summaryRecvBit | ((1 << 12) - 1)
)

// summaryBit returns the taint bit of parameter index i.
func summaryBit(i int) uint32 {
	if i > summaryMaxParam {
		i = summaryMaxParam
	}
	return 1 << uint(i)
}

// Summary records the externally-visible effects of one function on
// its parameters and results. All uint32 fields are parameter bitsets
// (summaryBit/summaryRecvBit).
type Summary struct {
	// ResultAlias: results may alias (share memory with) these
	// parameters. Clone-style helpers have no bits set — that absence
	// is what lets bufescape drop taint through a cloning helper.
	ResultAlias uint32 `json:"alias,omitempty"`
	// ResultLease: a result is a fresh store read lease (the helper
	// wraps Store.ReadLease).
	ResultLease bool `json:"lease,omitempty"`
	// MintsLocal: a result carries a freshly minted query-local
	// (high-bit) id.
	MintsLocal bool `json:"mint,omitempty"`
	// EscapesTerm: term-holding values of these parameters escape the
	// callee (stored to a global/field, sent, handed to a goroutine).
	EscapesTerm uint32 `json:"escTerm,omitempty"`
	// EscapesLease: a lease parameter escapes the callee — ownership
	// transfers to wherever it was stored.
	EscapesLease uint32 `json:"escLease,omitempty"`
	// Releases: the callee calls Release on these lease parameters
	// (directly, deferred, or through further helpers) on some path.
	Releases uint32 `json:"releases,omitempty"`
	// SinksID: the callee passes these parameters into a store
	// id-space lookup (MatchIDs/CountIDs/TermOf).
	SinksID uint32 `json:"sinks,omitempty"`
	// CallsParams: the callee invokes these func-typed parameters, so
	// a method value passed there (runThen(lease.Release)) executes.
	CallsParams uint32 `json:"calls,omitempty"`
	// Blocking describes the first unbounded-blocking operation the
	// callee may perform synchronously ("" = none known). Propagated
	// through call chains so leasehold sees blocking behind helpers.
	Blocking string `json:"blocking,omitempty"`
	// Bounded: the function body (transitively) contains a
	// completion-signal — a channel operation, WaitGroup Done/Wait, or
	// context use — so a goroutine running it can be awaited or
	// cancelled. Consumed by goleak.
	Bounded bool `json:"bounded,omitempty"`
	// Locks lists the lock labels (lockorder.go) the function acquires
	// synchronously, directly or through callees, sorted.
	Locks []string `json:"locks,omitempty"`
	// HookLocks lists the lock labels the function acquires on a
	// commit-hook path: like Locks, but go-launched literals are
	// excluded and `//lodlint:lockorder nolock`-reviewed callees
	// contribute nothing. An annotated function's own HookLocks is
	// pinned empty. Consumed by hookreent.
	HookLocks []string `json:"hookLocks,omitempty"`
	// MutatesStore describes how the function reaches a store mutation
	// (Add/Remove/Commit/bulk-load paths) synchronously, "" = it
	// provably does not. Never exempted by nolock. Consumed by
	// hookreent.
	MutatesStore string `json:"mutStore,omitempty"`
	// MutatesStats is the parameter bitset through which the function
	// mutates shard-stats state (the pstats map or its payload
	// records). Consumed by statshold to see through helpers like
	// (*shard).statAdd that document "caller holds sh.mu".
	MutatesStats uint32 `json:"mutStats,omitempty"`
	// MixPlain maps a field label (lockLabelOf) to the parameter bitset
	// whose fields the function loads or stores PLAINLY with no lock
	// held. Recorded only for unexported functions — the accessor-
	// helper shape — and only for basic integer-kind fields (the ones
	// sync/atomic free functions can also touch). Consumed by atomicmix
	// to see through accessor helpers.
	MixPlain map[string]uint32 `json:"mixPlain,omitempty"`
}

// equal reports field-wise equality (the fixpoint's change test).
func (s *Summary) equal(o *Summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.ResultAlias != o.ResultAlias || s.ResultLease != o.ResultLease ||
		s.MintsLocal != o.MintsLocal || s.EscapesTerm != o.EscapesTerm ||
		s.EscapesLease != o.EscapesLease || s.Releases != o.Releases ||
		s.SinksID != o.SinksID || s.CallsParams != o.CallsParams ||
		s.Blocking != o.Blocking || s.Bounded != o.Bounded ||
		s.MutatesStore != o.MutatesStore || s.MutatesStats != o.MutatesStats ||
		len(s.Locks) != len(o.Locks) || len(s.HookLocks) != len(o.HookLocks) ||
		len(s.MixPlain) != len(o.MixPlain) {
		return false
	}
	for i := range s.Locks {
		if s.Locks[i] != o.Locks[i] {
			return false
		}
	}
	for i := range s.HookLocks {
		if s.HookLocks[i] != o.HookLocks[i] {
			return false
		}
	}
	for k, v := range s.MixPlain {
		if o.MixPlain[k] != v {
			return false
		}
	}
	return true
}

// SummaryIndex holds the summaries of every loaded function plus the
// global lock-order facts, shared read-only by all analyzer passes.
type SummaryIndex struct {
	funcs map[string]*Summary
	// lockEdges is the global lock-acquisition graph: an edge A→B
	// means some function acquires B while holding A (lockorder.go).
	lockEdges []lockEdge
	// declared is the annotated lock order from //lodlint:lockorder
	// comments, with conflicts detected at build time.
	declared *lockOrder
	// nolock maps the FuncKey of every `//lodlint:lockorder nolock`
	// reviewed function to its stated reason; nolockErrs collects the
	// malformed annotations for lockorder to report.
	nolock     map[string]string
	nolockErrs []nolockDecl
	// atomicSites maps a field label to the sites that access it via
	// sync/atomic free functions; plainSites are the unprotected plain
	// accesses to those same labels (atomicmix.go). Both carry source
	// positions, so like lockEdges they are recomputed every run.
	atomicSites map[string][]mixSite
	plainSites  []mixSite
}

// Summary returns the computed summary for fn, or nil when fn was not
// part of the loaded set (stdlib, unexported dependency internals).
func (ix *SummaryIndex) Summary(fn *types.Func) *Summary {
	if ix == nil || fn == nil {
		return nil
	}
	key := FuncKey(fn)
	if key == "" {
		return nil
	}
	return ix.funcs[key]
}

// BuildSummaries computes (or loads from cacheDir) the summary of
// every function in pkgs and collects the global lock graph. cacheDir
// "" disables the on-disk cache. salt folds run configuration that
// changes what summaries mean — the analyzer version and the enabled
// analyzer set — into the cache key, so a stale v3 cache cannot mask
// v4 findings after an upgrade.
func BuildSummaries(pkgs []*Package, cacheDir, salt string) *SummaryIndex {
	ix := &SummaryIndex{funcs: map[string]*Summary{}, nolock: map[string]string{}}
	ordered := topoPackages(pkgs)
	// nolock annotations gate summary computation (an annotated
	// function's HookLocks is pinned empty), so they are parsed up
	// front for every package, cached or not.
	for _, pkg := range ordered {
		for _, nd := range parseNolockDecls(pkg) {
			if nd.err != "" {
				ix.nolockErrs = append(ix.nolockErrs, nd)
				continue
			}
			ix.nolock[nd.key] = nd.reason
		}
	}
	keys := map[string]string{}
	for _, pkg := range ordered {
		key := packageCacheKey(pkg, keys, salt)
		keys[pkg.Path] = key
		if m, ok := loadSummaryCache(cacheDir, key); ok {
			for k, s := range m {
				ix.funcs[k] = s
			}
			continue
		}
		m := summarizePackage(pkg, ix)
		for k, s := range m {
			ix.funcs[k] = s
		}
		saveSummaryCache(cacheDir, key, m)
	}
	// Lock edges carry source positions, so they are recomputed every
	// run (cheap linear scans) rather than cached.
	var decls []lockDecl
	for _, pkg := range ordered {
		decls = append(decls, parseLockDecls(pkg)...)
		ix.lockEdges = append(ix.lockEdges, collectLockEdges(pkg, ix)...)
	}
	ix.declared = buildLockOrder(decls)
	// atomicmix global facts run in two phases: first every package's
	// sync/atomic sites (establishing WHICH fields are atomic), then
	// every package's plain accesses restricted to those fields.
	ix.atomicSites = map[string][]mixSite{}
	for _, pkg := range ordered {
		collectAtomicSites(pkg, ix)
	}
	sortAtomicSites(ix)
	for _, pkg := range ordered {
		collectPlainMixSites(pkg, ix)
	}
	return ix
}

// summarizePackage computes the summaries of one package, reading
// dependency summaries (and in-progress same-package summaries) from
// ix. Three rounds bound the intra-package fixpoint.
func summarizePackage(pkg *Package, ix *SummaryIndex) map[string]*Summary {
	scratch := []Diagnostic{}
	pass := &Pass{
		Analyzer: summaryAnalyzer,
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    &scratch,
	}
	tc := newTermTypes(pass)
	stc := newStatsTypes(pass)
	decls := funcDecls(pkg)
	out := map[string]*Summary{}
	for round := 0; round < 3; round++ {
		changed := false
		for _, fd := range decls {
			key := declKey(pkg, fd)
			if key == "" {
				continue
			}
			sm := summarizeFunc(pass, tc, stc, fd, ix)
			if !sm.equal(ix.funcs[key]) {
				changed = true
			}
			ix.funcs[key] = sm
			out[key] = sm
		}
		if !changed {
			break
		}
	}
	return out
}

// summaryAnalyzer labels the internal pass used while computing
// summaries; it never reports.
var summaryAnalyzer = &Analyzer{Name: "summary", Doc: "internal summary computation"}

// summarizeFunc abstract-interprets one declaration with its
// parameters as taint sources and records the observed effects.
func summarizeFunc(pass *Pass, tc *termTypes, stc *statsTypes, fd *ast.FuncDecl, ix *SummaryIndex) *Summary {
	sm := &Summary{}
	paramBit := map[types.Object]uint32{}
	seed := map[types.Object]taint{}
	addParam := func(names []*ast.Ident, bit uint32) {
		for _, name := range names {
			if obj := pass.Info.Defs[name]; obj != nil {
				paramBit[obj] = bit
				seed[obj] = taint(bit)
			}
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			addParam(field.Names, summaryRecvBit)
		}
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				addParam([]*ast.Ident{name}, summaryBit(idx))
				idx++
			}
		}
	}

	hooks := &flowHooks{
		callResult: func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint) taint {
			fn := calleeFunc(pass.Info, call)
			if fn != nil {
				if fn.Name() == "ReadLease" && isMethodOn(fn, storePkgPath, "Store") {
					return taint(summaryLeaseBit)
				}
				if isRdfClone(fn) {
					return 0
				}
				if fn.Name() == "idOf" && resultIsTermID(fn) {
					return taint(summaryMintBit)
				}
				if s := ix.Summary(fn); s != nil {
					var t taint
					mapEachAliasedOperand(s.ResultAlias, fn, call.Args, func(i int) {
						if i < 0 {
							t |= recv
						} else if i < len(args) {
							t |= args[i]
						}
					})
					if s.ResultLease {
						t |= taint(summaryLeaseBit)
					}
					if s.MintsLocal {
						t |= taint(summaryMintBit)
					}
					return t
				}
			}
			// Unknown callee: the result may alias anything passed in.
			return recv | orTaints(args)
		},
		binaryResult: func(f *funcFlow, e *ast.BinaryExpr, x, y taint) taint {
			switch e.Op {
			case token.OR:
				if isHighBitIDConst(pass, e.X) || isHighBitIDConst(pass, e.Y) {
					return (x | y) | taint(summaryMintBit)
				}
			case token.AND_NOT:
				// Masking the high bit materializes a plain local-dict
				// index: the numeric result aliases no term and carries no
				// local flag.
				if isHighBitIDConst(pass, e.Y) {
					return 0
				}
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
				token.LAND, token.LOR:
				return 0
			}
			return x | y
		},
		onCall: func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint, deferred bool) {
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				// Calling a func-typed parameter directly.
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if bit := paramBit[pass.Info.ObjectOf(id)]; bit != 0 {
						sm.CallsParams |= bit
					}
				}
				return
			}
			if fn.Name() == "Release" && isMethodOn(fn, storePkgPath, "Lease") {
				if f.asyncDepth == 0 {
					sm.Releases |= uint32(recv) & summaryParamMask
				}
				return
			}
			if idSinkMethods[fn.Name()] &&
				(isMethodOn(fn, storePkgPath, "Store") || isMethodOn(fn, storePkgPath, "Lease")) {
				for i, a := range call.Args {
					if i < len(args) && isTermIDExpr(pass, a) {
						sm.SinksID |= uint32(args[i]) & summaryParamMask
					}
				}
			}
			if f.asyncDepth == 0 && f.depth == 0 && sm.Blocking == "" {
				if kind := summaryBlockingKind(pass, call, fn); kind != "" {
					sm.Blocking = kind
				}
			}
			s := ix.Summary(fn)
			if s == nil {
				return
			}
			mapBits := func(calleeBits uint32) uint32 {
				var out uint32
				mapEachAliasedOperand(calleeBits, fn, call.Args, func(i int) {
					if i < 0 {
						out |= uint32(recv)
					} else if i < len(args) {
						out |= uint32(args[i])
					}
				})
				return out & summaryParamMask
			}
			if f.asyncDepth == 0 {
				sm.Releases |= mapBits(s.Releases)
			}
			sm.SinksID |= mapBits(s.SinksID)
			sm.EscapesTerm |= mapBits(s.EscapesTerm)
			sm.EscapesLease |= mapBits(s.EscapesLease)
			if f.asyncDepth == 0 && f.depth == 0 && sm.Blocking == "" && s.Blocking != "" {
				sm.Blocking = "a call to " + fn.Name() + ", which blocks on " + s.Blocking
			}
			if s.CallsParams != 0 {
				// A method value passed into an invoked func parameter runs:
				// runThen(lease.Release) releases the lease.
				for i, a := range call.Args {
					if !calleeParamBitSet(s.CallsParams, fn, i) {
						continue
					}
					if mv := methodValueFunc(pass, a); mv != nil &&
						mv.Name() == "Release" && isMethodOn(mv, storePkgPath, "Lease") &&
						i < len(args) && f.asyncDepth == 0 {
						sm.Releases |= uint32(args[i]) & summaryParamMask
					}
				}
			}
		},
		onChanOp: func(f *funcFlow, pos token.Pos) {
			if f.asyncDepth == 0 && f.depth == 0 && sm.Blocking == "" {
				sm.Blocking = "a channel operation"
			}
		},
		onCondFalse: func(f *funcFlow, cond ast.Expr) {
			// The high-bit guard refuted: the tested TermID is a plain
			// store id here, so neither its localness nor its (id-only)
			// parameter derivation survives into sinks on this path.
			if e := highBitTestedOperand(pass, cond); e != nil {
				if root := rootIdent(e); root != nil {
					if obj := pass.Info.ObjectOf(root); obj != nil {
						f.set(obj, 0)
					}
				}
			}
		},
		onEscape: func(f *funcFlow, kind escapeKind, e ast.Expr, pos token.Pos, t taint) {
			bits := uint32(t) & summaryParamMask
			et := exprType(pass, e)
			if kind == escapeReturn {
				if bits != 0 && tc.holdsTermTuple(et) {
					sm.ResultAlias |= bits
				}
				if uint32(t)&summaryLeaseBit != 0 && typeIsLease(et) {
					sm.ResultLease = true
				}
				if uint32(t)&summaryMintBit != 0 && typeHoldsTermID(et) {
					sm.MintsLocal = true
				}
				return
			}
			if bits == 0 {
				return
			}
			if tc.holdsTermTuple(et) {
				sm.EscapesTerm |= bits
			}
			if typeIsLease(et) {
				sm.EscapesLease |= bits
			}
		},
	}
	runFlow(pass, fd, hooks, seed)

	sm.Bounded = boundedEvidence(pass, fd.Body, ix)
	sm.Locks = scanFuncLocks(pass, fd, ix)
	reviewed := false
	if fnObj, _ := pass.Info.Defs[fd.Name].(*types.Func); fnObj != nil && ix.nolock != nil {
		_, reviewed = ix.nolock[FuncKey(fnObj)]
	}
	if !reviewed {
		sm.HookLocks = scanHookLocks(pass, fd, ix)
	}
	sm.MutatesStore = storeMutationWitness(pass, fd, ix)
	sm.MutatesStats = statsMutationBits(pass, stc, fd, ix, paramBit)
	if !fd.Name.IsExported() {
		sm.MixPlain = mixPlainSummary(pass, fd, ix, paramBit)
	}
	return sm
}

// mapEachAliasedOperand translates a callee parameter bitset into
// call-site operand indexes: visit(-1) for the receiver, visit(i) for
// argument i. Variadic arguments collapse onto the last parameter.
func mapEachAliasedOperand(calleeBits uint32, fn *types.Func, args []ast.Expr, visit func(i int)) {
	if calleeBits == 0 {
		return
	}
	if calleeBits&summaryRecvBit != 0 {
		visit(-1)
	}
	for i := range args {
		if calleeParamBitSet(calleeBits, fn, i) {
			visit(i)
		}
	}
}

// calleeParamBitSet reports whether the callee bitset covers the
// parameter that receives argument i.
func calleeParamBitSet(calleeBits uint32, fn *types.Func, argIdx int) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	np := sig.Params().Len()
	if np == 0 {
		return false
	}
	if argIdx >= np {
		argIdx = np - 1
	}
	return calleeBits&summaryBit(argIdx) != 0
}

// summaryBlockingKind is blockingCallKind minus the generic
// sync.Mutex/RWMutex acquisition case: a short critical section inside
// a helper (metrics, registries) is bounded work, not the unbounded
// blocking the lease contract is about. Direct mutex acquisitions at
// the lease holder's own level are still flagged by leasehold itself,
// and store-lock re-entry keeps propagating via the storePkgPath case.
func summaryBlockingKind(pass *Pass, call *ast.CallExpr, fn *types.Func) string {
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		(fn.Name() == "Lock" || fn.Name() == "RLock") {
		return ""
	}
	return blockingCallKind(pass, call, fn)
}

// isRdfClone matches the rdf.Quad/Term/Triple Clone sanitizers.
func isRdfClone(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Clone" &&
		(isMethodOn(fn, rdfPkgPath, "Quad") || isMethodOn(fn, rdfPkgPath, "Term") ||
			isMethodOn(fn, rdfPkgPath, "Triple"))
}

// typeIsLease reports whether t is *store.Lease (or store.Lease).
func typeIsLease(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if typeIsLease(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	n := namedOrPtr(t)
	return n != nil && isNamedType(n, storePkgPath, "Lease")
}

// exprType returns the static type of e, or nil.
func exprType(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// methodValueFunc returns the method a selector expression binds as a
// method value (lease.Release used as a func()), or nil.
func methodValueFunc(pass *Pass, e ast.Expr) *types.Func {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	fn, _ := s.Obj().(*types.Func)
	return fn
}

// boundedEvidence reports whether body contains a completion signal a
// spawner could wait on: any channel operation, a WaitGroup
// Done/Wait, a context.Context method call (Done/Err/Deadline/Value —
// the spawner holds the cancel side), or a call into a function
// already known to be bounded. Nested function literals are skipped:
// a closure that is merely built or returned here does not run in
// this function's extent, so its contents prove nothing about it.
func boundedEvidence(pass *Pass, body *ast.BlockStmt, ix *SummaryIndex) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := exprType(pass, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			// An immediately-invoked or deferred literal does run here.
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				if boundedEvidence(pass, lit.Body, ix) {
					found = true
				}
				return false
			}
			fn := calleeFunc(pass.Info, n)
			if fn == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			switch {
			case (fn.Name() == "Done" || fn.Name() == "Wait") && isMethodOn(fn, "sync", "WaitGroup"):
				found = true
			case fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
				sig != nil && sig.Recv() != nil:
				found = true
			default:
				if s := ix.Summary(fn); s != nil && s.Bounded {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// sigHasLifecycleParam reports whether fn's signature accepts a
// lifecycle handle — a context.Context, a channel, or a
// *sync.WaitGroup — through which the spawner controls or observes
// completion.
func sigHasLifecycleParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isContextType(t) {
			return true
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			return true
		}
		if p, ok := t.(*types.Pointer); ok {
			if isNamedType(p.Elem(), "sync", "WaitGroup") {
				return true
			}
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ---- on-disk summary cache ----

// packageCacheKey hashes everything a package's summaries depend on:
// the format version, the run salt (analyzer version + enabled set),
// the import path, every source file's contents, and the cache keys
// of its loaded dependencies (so a change deep in internal/store
// invalidates internal/sparql too).
func packageCacheKey(pkg *Package, depKeys map[string]string, salt string) string {
	h := sha256.New()
	h.Write([]byte(summaryFormatVersion))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(pkg.Path))
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		h.Write([]byte(name))
		data, err := os.ReadFile(name)
		if err != nil {
			// Unreadable source: salt the key so the cache misses.
			h.Write([]byte(err.Error()))
			continue
		}
		h.Write(data)
	}
	if pkg.Types != nil {
		var deps []string
		for _, imp := range pkg.Types.Imports() {
			if k, ok := depKeys[imp.Path()]; ok {
				deps = append(deps, imp.Path()+"="+k)
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			h.Write([]byte(d))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func cacheFilePath(cacheDir, key string) string {
	return filepath.Join(cacheDir, key+".json")
}

func loadSummaryCache(cacheDir, key string) (map[string]*Summary, bool) {
	if cacheDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(cacheFilePath(cacheDir, key))
	if err != nil {
		return nil, false
	}
	var m map[string]*Summary
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false
	}
	return m, true
}

func saveSummaryCache(cacheDir, key string, m map[string]*Summary) {
	if cacheDir == "" {
		return
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	// Atomic-enough for a cache: write-then-rename so concurrent runs
	// never read a torn file; any failure just means a future miss.
	tmp := cacheFilePath(cacheDir, key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, cacheFilePath(cacheDir, key))
}
