package analysis

import (
	"go/ast"
	"go/types"
)

// LockSafe flags the two locking mistakes the Store/Broker
// architecture is exposed to:
//
//  1. sync.Mutex / sync.RWMutex values copied by value — receivers,
//     parameters, results, plain assignments and range variables
//     whose type (directly or through struct/array nesting) contains
//     a lock. A copied lock guards nothing.
//  2. lock re-entrancy: a method that acquires a mutex field of its
//     receiver and, while holding it, calls another method of the
//     same receiver that acquires the same field. sync mutexes are
//     not re-entrant; with RWMutex this deadlocks as soon as a writer
//     is queued between the two acquisitions.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flags mutex-by-value copies and re-entrant locking between methods of one receiver",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) {
	c := &lockChecker{pass: pass, memo: map[types.Type]bool{}}
	c.checkCopies()
	c.checkReentrancy()
}

type lockChecker struct {
	pass *Pass
	memo map[types.Type]bool
}

// containsLock reports whether a value of type t embeds a sync.Mutex
// or sync.RWMutex without pointer indirection.
func (c *lockChecker) containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // cycle guard; recursive value types go through pointers
	v := false
	switch {
	case isNamedType(t, "sync", "Mutex"), isNamedType(t, "sync", "RWMutex"):
		v = true
	default:
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields() && !v; i++ {
				v = c.containsLock(u.Field(i).Type())
			}
		case *types.Array:
			v = c.containsLock(u.Elem())
		}
	}
	c.memo[t] = v
	return v
}

func (c *lockChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.Info.Types[e]; ok {
		return tv.Type
	}
	// Idents introduced by := in range clauses are recorded in
	// Defs/Uses, not in Types.
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// checkCopies walks declarations and statements that copy values.
func (c *lockChecker) checkCopies() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, f := range n.Recv.List {
						c.checkFieldType(f, "receiver")
					}
				}
				if n.Type.Params != nil {
					for _, f := range n.Type.Params.List {
						c.checkFieldType(f, "parameter")
					}
				}
				if n.Type.Results != nil {
					for _, f := range n.Type.Results.List {
						c.checkFieldType(f, "result")
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Rhs) != len(n.Lhs) {
						break
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if copiesValue(rhs) && c.containsLock(c.typeOf(rhs)) {
						c.pass.Reportf(rhs.Pos(), "assignment copies a value containing a sync mutex (%s)", types.TypeString(c.typeOf(rhs), nil))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := c.typeOf(n.Value); c.containsLock(t) {
						c.pass.Reportf(n.Value.Pos(), "range copies a value containing a sync mutex (%s); range over indices or pointers instead", types.TypeString(t, nil))
					}
				}
			}
			return true
		})
	}
}

func (c *lockChecker) checkFieldType(f *ast.Field, kind string) {
	t := c.typeOf(f.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if c.containsLock(t) {
		c.pass.Reportf(f.Type.Pos(), "%s passes a value containing a sync mutex (%s) by value; use a pointer", kind, types.TypeString(t, nil))
	}
}

// copiesValue reports whether rhs denotes an existing addressable
// value whose assignment duplicates it (as opposed to constructing a
// fresh one).
func copiesValue(rhs ast.Expr) bool {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// ---- re-entrancy ----

type methodLockInfo struct {
	decl *ast.FuncDecl
	// locks holds the receiver mutex fields this method acquires.
	locks map[string]bool
}

func (c *lockChecker) checkReentrancy() {
	// Pass 1: which methods of which receiver type acquire which
	// receiver mutex fields.
	methods := map[string]map[string]*methodLockInfo{} // recv type name -> method -> info
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvType, recvName := receiverOf(fd)
			if recvType == "" || recvName == "" {
				continue
			}
			info := &methodLockInfo{decl: fd, locks: map[string]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if field, op, ok := c.recvMutexOp(call, recvName); ok && (op == "Lock" || op == "RLock") {
					info.locks[field] = true
				}
				return true
			})
			if methods[recvType] == nil {
				methods[recvType] = map[string]*methodLockInfo{}
			}
			methods[recvType][fd.Name.Name] = info
		}
	}

	// Pass 2: linear scan of each locking method for held-lock calls
	// into other locking methods of the same receiver.
	for recvType, byName := range methods {
		for _, info := range byName {
			if len(info.locks) == 0 {
				continue
			}
			c.scanHeldCalls(recvType, byName, info)
		}
	}
}

func (c *lockChecker) scanHeldCalls(recvType string, byName map[string]*methodLockInfo, info *methodLockInfo) {
	_, recvName := receiverOf(info.decl)
	held := map[string]bool{}
	heldToEnd := map[string]bool{}

	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if field, op, ok := c.recvMutexOp(call, recvName); ok {
			switch op {
			case "Lock", "RLock":
				held[field] = true
			case "Unlock", "RUnlock":
				if deferred[call] {
					heldToEnd[field] = true
				} else {
					held[field] = false
				}
			}
			return true
		}
		// recv.M(...) where M locks a field currently held here.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recvName {
				if callee, ok := byName[sel.Sel.Name]; ok {
					for field := range callee.locks {
						if held[field] || heldToEnd[field] {
							c.pass.Reportf(call.Pos(),
								"%s.%s calls %s while holding %s.%s, and %s re-locks it (mutexes are not re-entrant)",
								recvType, info.decl.Name.Name, sel.Sel.Name, recvName, field, sel.Sel.Name)
						}
					}
				}
			}
		}
		return true
	})
}

// recvMutexOp matches recv.field.Lock/Unlock/RLock/RUnlock() calls on
// a mutex-typed receiver field and returns the field and operation.
func (c *lockChecker) recvMutexOp(call *ast.CallExpr, recvName string) (field, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := ast.Unparen(inner.X).(*ast.Ident)
	if !isIdent || id.Name != recvName {
		return "", "", false
	}
	t := c.typeOf(inner)
	if t == nil || !(isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")) {
		return "", "", false
	}
	return inner.Sel.Name, op, true
}

// receiverOf returns the receiver's type name (sans pointer) and the
// receiver variable name.
func receiverOf(fd *ast.FuncDecl) (typeName, varName string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", ""
	}
	f := fd.Recv.List[0]
	if len(f.Names) == 1 {
		varName = f.Names[0].Name
	}
	t := f.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		typeName = t.Name
	case *ast.IndexExpr: // generic receiver, one type parameter
		if id, ok := t.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	case *ast.IndexListExpr: // generic receiver, multiple type parameters
		if id, ok := t.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	}
	return typeName, varName
}
