package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// obsPkgPath is the observability package the span contract lives in.
const obsPkgPath = "lodify/internal/obs"

// SpanEnd flags spans from obs.StartSpan that are never ended and
// never handed off: without End the span is unrecorded — it reaches
// neither the collector ring nor the lodify_span_seconds histogram —
// and its trace renders incomplete. End is idempotent and nil-safe,
// so the fix (usually `defer sp.End(ctx)`) is always safe to apply.
//
// A span escapes the started function when it is returned, stored, or
// passed to another call; ownership moves with it, and the analyzer
// stays quiet (the receiving code is responsible for ending it).
// Selector uses (sp.Event, sp.TraceID) do not transfer ownership.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "flags obs.StartSpan spans that are never ended or handed off",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanEnds(pass, fd.Body)
		}
	}
}

type spanUse struct {
	pos     token.Pos
	name    string
	ended   bool
	escaped bool
}

// checkSpanEnds analyzes one function body (nested literals included:
// a span ended inside a deferred closure counts).
func checkSpanEnds(pass *Pass, body *ast.BlockStmt) {
	spans := map[types.Object]*spanUse{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !calleeIsPkgFunc(pass.Info, call, obsPkgPath, "StartSpan") {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id] // ctx, sp = ... (plain assign)
			}
			if obj == nil || !isSpanPtr(obj.Type()) {
				continue
			}
			if _, seen := spans[obj]; !seen {
				spans[obj] = &spanUse{pos: id.Pos(), name: id.Name}
			}
		}
		return true
	})
	if len(spans) == 0 {
		return
	}

	// Classify every use of each span variable: an End call ends it; a
	// selector use (sp.Event, sp.TraceID) is benign; `_ = sp` keeps the
	// compiler happy without handing anything off; any other bare use
	// transfers ownership (returned, stored, passed along) and silences
	// the rule for that span.
	selectorBase := map[*ast.Ident]bool{}
	blankAssigned := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if si := spans[pass.Info.Uses[id]]; si != nil {
						si.ended = true
					}
				}
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				selectorBase[id] = true
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !isBlank(lhs) {
					continue
				}
				if id, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident); ok {
					blankAssigned[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		si := spans[pass.Info.Uses[id]]
		if si == nil || selectorBase[id] || blankAssigned[id] {
			return true
		}
		si.escaped = true
		return true
	})

	ordered := make([]*spanUse, 0, len(spans))
	for _, si := range spans {
		ordered = append(ordered, si)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].pos < ordered[j].pos })
	for _, si := range ordered {
		if !si.ended && !si.escaped {
			pass.Reportf(si.pos,
				"span %s from obs.StartSpan is never ended: the span goes unrecorded and its trace stays incomplete; defer %s.End(ctx) (End is idempotent and nil-safe) or hand the span off",
				si.name, si.name)
		}
	}
}

// isSpanPtr reports *obs.Span.
func isSpanPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamedType(p.Elem(), obsPkgPath, "Span")
}
