package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Call-graph scaffolding for the interprocedural layer (DESIGN.md §12).
// The summary pass (summary.go) walks every function of every loaded
// package bottom-up: packages in dependency order, functions within a
// package iterated to a small bounded fixpoint so intra-package call
// cycles (including recursion) converge. This file provides the
// pieces that make that walk deterministic and addressable:
//
//   - FuncKey: a stable string identity for a *types.Func, usable as a
//     cross-package (and on-disk cache) summary key.
//   - funcDecls: the FuncDecls of a package in file/position order.
//   - topoPackages: loaded packages sorted callees-first.
//
// Only statically-resolvable calls participate (the same calleeFunc
// resolution the v1/v2 analyzers use, generic instantiations
// unwrapped). Calls through function values are opaque to the graph —
// except for func-typed parameters, which summaries model via
// CallsParams so method values passed into helpers stay visible.

// FuncKey returns a stable identity for fn: "pkgpath.Name" for
// package-level functions, "pkgpath.(Recv).Name" for methods (pointer
// receivers are not distinguished from value receivers — Go allows one
// method set per name anyway). The empty string means fn has no
// useful identity (builtins, error.Error, interface methods).
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	var b strings.Builder
	b.WriteString(fn.Pkg().Path())
	b.WriteByte('.')
	if recv := sig.Recv(); recv != nil {
		n := namedOrPtr(recv.Type())
		if n == nil || n.Obj() == nil {
			return "" // interface or type-parameter receiver: no single body
		}
		b.WriteByte('(')
		b.WriteString(n.Obj().Name())
		b.WriteString(").")
	}
	b.WriteString(fn.Name())
	return b.String()
}

// funcDecls returns the package's function declarations with bodies,
// in file order then position order — the deterministic iteration
// order of the summary fixpoint.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// declKey resolves the FuncKey of a declaration via its defining
// object.
func declKey(pkg *Package, fd *ast.FuncDecl) string {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return FuncKey(fn)
}

// topoPackages orders the loaded packages callees-first: a package
// appears after every loaded package it imports. Ties (and the
// cycle-free remainder) break by import path, so the order — and
// everything derived from it, summaries included — is reproducible.
func topoPackages(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	indeg := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string, len(pkgs))
	for _, p := range pkgs {
		if _, ok := indeg[p.Path]; !ok {
			indeg[p.Path] = 0
		}
		if p.Types == nil {
			continue
		}
		for _, imp := range p.Types.Imports() {
			if _, loaded := byPath[imp.Path()]; loaded {
				indeg[p.Path]++
				dependents[imp.Path()] = append(dependents[imp.Path()], p.Path)
			}
		}
	}
	ready := make([]string, 0, len(pkgs))
	for path, d := range indeg {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	var out []*Package
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		next := dependents[path]
		sort.Strings(next)
		for _, dep := range next {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
				sort.Strings(ready)
			}
		}
	}
	// Import cycles cannot type-check in Go, but stay total anyway.
	if len(out) < len(pkgs) {
		seen := map[string]bool{}
		for _, p := range out {
			seen[p.Path] = true
		}
		var rest []*Package
		for _, p := range pkgs {
			if !seen[p.Path] {
				rest = append(rest, p)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].Path < rest[j].Path })
		out = append(out, rest...)
	}
	return out
}
