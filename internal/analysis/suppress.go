package analysis

import (
	"sort"
	"strings"
)

// Suppression is one finding silenced by a //lodlint:ignore comment.
// Suppressions are first-class output: the driver counts and lists
// them, so an ignore that no longer matches a finding — or a pile of
// ignores hiding real debt — stays visible instead of rotting silently.
type Suppression struct {
	// File/Line locate the suppressed finding.
	File string `json:"file"`
	Line int    `json:"line"`
	// Rule is the analyzer the directive names.
	Rule string `json:"rule"`
	// Reason is the justification text after the rule name.
	Reason string `json:"reason"`
	// Message is the finding that was silenced.
	Message string `json:"message"`
}

// ignoreDirective is one parsed //lodlint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	rule   string
	reason string
}

const ignorePrefix = "//lodlint:ignore"

// Suppress partitions diags by the //lodlint:ignore directives in the
// analyzed packages. A directive
//
//	//lodlint:ignore <rule> <reason>
//
// silences findings of <rule> on its own line (trailing comment) or on
// the line directly below (comment-above idiom). Anything else in the
// comment after the rule name is the recorded reason.
func Suppress(pkgs []*Package, diags []Diagnostic) (kept []Diagnostic, suppressed []Suppression) {
	var directives []ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					directives = append(directives, ignoreDirective{
						file:   pos.Filename,
						line:   pos.Line,
						rule:   fields[0],
						reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}

	kept = diags[:0:0]
	for _, d := range diags {
		matched := false
		for _, dir := range directives {
			if dir.file == d.File && dir.rule == d.Analyzer &&
				(dir.line == d.Line || dir.line == d.Line-1) {
				suppressed = append(suppressed, Suppression{
					File:    d.File,
					Line:    d.Line,
					Rule:    dir.rule,
					Reason:  dir.reason,
					Message: d.Message,
				})
				matched = true
				break
			}
		}
		if !matched {
			kept = append(kept, d)
		}
	}
	sort.Slice(suppressed, func(i, j int) bool {
		if suppressed[i].File != suppressed[j].File {
			return suppressed[i].File < suppressed[j].File
		}
		return suppressed[i].Line < suppressed[j].Line
	})
	return kept, suppressed
}
