package analysis

import (
	"sort"
	"strings"
)

// Suppression is one finding silenced by a //lodlint:ignore comment.
// Suppressions are first-class output: the driver counts and lists
// them, so an ignore that no longer matches a finding — or a pile of
// ignores hiding real debt — stays visible instead of rotting silently.
type Suppression struct {
	// File/Line locate the suppressed finding.
	File string `json:"file"`
	Line int    `json:"line"`
	// Rule is the analyzer the directive names.
	Rule string `json:"rule"`
	// Reason is the justification text after the rule name.
	Reason string `json:"reason"`
	// Message is the finding that was silenced.
	Message string `json:"message"`
}

// ignoreDirective is one parsed //lodlint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	rule   string
	reason string
}

const ignorePrefix = "//lodlint:ignore"

// bareIgnoreRule names the findings emitted for reasonless ignore
// directives; it is not a runnable analyzer, just a rule id in output.
const bareIgnoreRule = "bareignore"

// Suppress partitions diags by the //lodlint:ignore directives in the
// analyzed packages. A directive
//
//	//lodlint:ignore <rule> — <reason>
//
// silences findings of <rule> on its own line (trailing comment) or on
// the line directly below (comment-above idiom). The reason — any text
// after the rule name, with an optional leading dash — is mandatory: a
// bare `//lodlint:ignore <rule>` suppresses nothing and is itself
// reported as a finding, so undocumented debt cannot hide behind the
// directive that was supposed to document it.
func Suppress(pkgs []*Package, diags []Diagnostic) (kept []Diagnostic, suppressed []Suppression) {
	var directives []ignoreDirective
	kept = diags[:0:0]
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					reason := strings.Join(fields[1:], " ")
					reason = strings.TrimSpace(strings.TrimLeft(reason, "—–- \t"))
					if reason == "" {
						kept = append(kept, Diagnostic{
							Analyzer: bareIgnoreRule,
							Pos:      pos,
							File:     pos.Filename,
							Line:     pos.Line,
							Column:   pos.Column,
							Message: "suppression without a reason: write //lodlint:ignore " +
								fields[0] + " — <why this finding is acceptable>",
						})
						continue
					}
					directives = append(directives, ignoreDirective{
						file:   pos.Filename,
						line:   pos.Line,
						rule:   fields[0],
						reason: reason,
					})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, dir := range directives {
			if dir.file == d.File && dir.rule == d.Analyzer &&
				(dir.line == d.Line || dir.line == d.Line-1) {
				suppressed = append(suppressed, Suppression{
					File:    d.File,
					Line:    d.Line,
					Rule:    dir.rule,
					Reason:  dir.reason,
					Message: d.Message,
				})
				matched = true
				break
			}
		}
		if !matched {
			kept = append(kept, d)
		}
	}
	SortDiagnostics(kept)
	sort.Slice(suppressed, func(i, j int) bool {
		if suppressed[i].File != suppressed[j].File {
			return suppressed[i].File < suppressed[j].File
		}
		if suppressed[i].Line != suppressed[j].Line {
			return suppressed[i].Line < suppressed[j].Line
		}
		if suppressed[i].Rule != suppressed[j].Rule {
			return suppressed[i].Rule < suppressed[j].Rule
		}
		return suppressed[i].Message < suppressed[j].Message
	})
	return kept, suppressed
}
