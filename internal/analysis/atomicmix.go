package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// AtomicMix flags struct fields (and package-level variables) that
// are accessed via sync/atomic free functions at one site and by a
// plain load or store at another with no lock held. Mixing the two is
// a data race even when the plain side "only reads": the Go memory
// model gives a plain access no ordering against the atomic one.
//
// Detection runs in two global phases over the summary index: phase
// one records every `atomic.AddInt64(&x.f, ...)`-shaped site, naming
// the operand instance-blind by owner type and field (lockLabelOf);
// phase two records every plain access to one of those labels that
// happens with no mutex held. A plain access under ANY held lock is
// accepted — the protecting-lock association is owner-blind on
// purpose, trading missed pairings for zero false alarms on
// lock-protected snapshot paths.
//
// Accessor helpers are seen through via the MixPlain summary field:
// an unexported function's unprotected plain accesses rooted at a
// parameter or receiver are deferred to its call sites (the
// "caller holds the lock" idiom must be judged where the caller's
// held set is known), and surface there unless the caller holds a
// lock or defers again. Exported functions report at the access site
// directly — their callers are outside the loaded world.
//
// With -interproc=off both phases degrade to per-package facts and
// helpers become opaque.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags fields accessed via sync/atomic at one site and by plain load/store at another with no lock held",
	Run:  runAtomicMix,
}

// mixSite is one access to an atomically-used field: a sync/atomic
// call site or an unprotected plain load/store.
type mixSite struct {
	label string
	pkg   string
	pos   token.Position
	// fn names the containing function; via names the callee whose
	// MixPlain summary surfaced the plain access ("" = the access is
	// in fn's own body).
	fn  string
	via string
}

// atomicOperandLabel classifies call as a sync/atomic free function
// taking &X.f (or &pkgvar) and returns the operand's lock label, or
// "". Methods on the typed atomics (atomic.Int64 and friends) are
// excluded: their field type makes a plain mixed access impossible.
func atomicOperandLabel(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	if len(call.Args) == 0 {
		return ""
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return ""
	}
	return lockLabelOf(pass, un.X)
}

// plainAccessLabel names e when it is a plain access to an
// atomic-capable slot: a selector of a basic integer-kind struct
// field, or a package-level integer variable. Everything else — local
// variables, pointer/struct fields — yields "".
func plainAccessLabel(pass *Pass, e ast.Expr) string {
	var t types.Type
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		fv, ok := pass.Info.Uses[x.Sel].(*types.Var)
		if !ok || !fv.IsField() {
			return ""
		}
		t = fv.Type()
	case *ast.Ident:
		v, ok := pass.Info.ObjectOf(x).(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return ""
		}
		t = v.Type()
	default:
		return ""
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return ""
	}
	return lockLabelOf(pass, e)
}

// scratchMixPass wraps a package in a non-reporting pass for the
// global fact-collection phases.
func scratchMixPass(pkg *Package) *Pass {
	scratch := []Diagnostic{}
	return &Pass{
		Analyzer: summaryAnalyzer, Path: pkg.Path, Fset: pkg.Fset,
		Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, diags: &scratch,
	}
}

// collectAtomicSites records every sync/atomic free-function site of
// pkg into ix.atomicSites (phase one).
func collectAtomicSites(pkg *Package, ix *SummaryIndex) {
	pass := scratchMixPass(pkg)
	for _, fd := range funcDecls(pkg) {
		if fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if label := atomicOperandLabel(pass, call); label != "" {
				ix.atomicSites[label] = append(ix.atomicSites[label], mixSite{
					label: label, pkg: pkg.Path,
					pos: pkg.Fset.Position(call.Pos()), fn: name,
				})
			}
			return true
		})
	}
}

// sortAtomicSites orders each label's sites so the first entry is a
// deterministic witness for report messages.
func sortAtomicSites(ix *SummaryIndex) {
	for _, sites := range ix.atomicSites {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].pos.Filename != sites[j].pos.Filename {
				return sites[i].pos.Filename < sites[j].pos.Filename
			}
			if sites[i].pos.Line != sites[j].pos.Line {
				return sites[i].pos.Line < sites[j].pos.Line
			}
			return sites[i].pos.Column < sites[j].pos.Column
		})
	}
}

// collectPlainMixSites records pkg's unprotected plain accesses to
// atomically-used labels into ix.plainSites (phase two).
func collectPlainMixSites(pkg *Package, ix *SummaryIndex) {
	if len(ix.atomicSites) == 0 {
		return
	}
	pass := scratchMixPass(pkg)
	seen := map[string]bool{}
	for _, fd := range funcDecls(pkg) {
		if fd.Body == nil {
			continue
		}
		params := declParamBits(pass, fd)
		exported := fd.Name.IsExported()
		name := fd.Name.Name
		emit := func(label string, pos token.Pos, root types.Object, via string) {
			if _, mixed := ix.atomicSites[label]; !mixed {
				return
			}
			if !exported && root != nil && params[root] != 0 {
				// Deferred through MixPlain: the access surfaces at the
				// call sites, where the caller's held set is known.
				return
			}
			p := pkg.Fset.Position(pos)
			key := label + "\x00" + p.Filename + "\x00" + strconv.Itoa(p.Line)
			if seen[key] {
				return
			}
			seen[key] = true
			ix.plainSites = append(ix.plainSites, mixSite{
				label: label, pkg: pkg.Path, pos: p, fn: name, via: via,
			})
		}
		scanMix(pass, ix, fd, emit)
	}
}

// mixPlainSummary computes the MixPlain summary field of one
// unexported declaration: label → the parameter bits whose fields it
// loads or stores plainly with no lock held. Callee MixPlain entries
// propagate when the operand is itself parameter-rooted, so accessor
// chains fold up within the summary fixpoint.
func mixPlainSummary(pass *Pass, fd *ast.FuncDecl, ix *SummaryIndex, paramBit map[types.Object]uint32) map[string]uint32 {
	if fd.Body == nil {
		return nil
	}
	var out map[string]uint32
	emit := func(label string, pos token.Pos, root types.Object, via string) {
		if root == nil {
			return
		}
		bit := paramBit[root] & summaryParamMask
		if bit == 0 {
			return
		}
		if out == nil {
			out = map[string]uint32{}
		}
		out[label] |= bit
	}
	scanMix(pass, ix, fd, emit)
	return out
}

// declParamBits maps fd's receiver and parameter objects to their
// summary taint bits (summaryRecvBit / summaryBit(i)).
func declParamBits(pass *Pass, fd *ast.FuncDecl) map[types.Object]uint32 {
	out := map[types.Object]uint32{}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = summaryRecvBit
				}
			}
		}
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = summaryBit(idx)
				}
				idx++
			}
		}
	}
	return out
}

// scanMix runs the mix scanner over fd's body and every go-launched
// literal in it, the latter on a fresh (empty) held set — a lock held
// at spawn time does not protect the goroutine's body.
func scanMix(pass *Pass, ix *SummaryIndex, fd *ast.FuncDecl, emit func(label string, pos token.Pos, root types.Object, via string)) {
	roots := []ast.Stmt{ast.Stmt(fd.Body)}
	for len(roots) > 0 {
		sc := &mixScanner{pass: pass, ix: ix, emit: emit}
		sc.stmt(roots[0])
		roots = roots[1:]
		for _, lit := range sc.goBodies {
			roots = append(roots, ast.Stmt(lit.Body))
		}
	}
}

// mixScanner is a branch-blind statement walker that tracks the
// directly-held mutex set and emits every unprotected plain access to
// an atomic-capable slot. Any held lock counts as protection.
type mixScanner struct {
	pass *Pass
	ix   *SummaryIndex
	held []string
	// goBodies defers go-statement literals for scanning as fresh
	// roots.
	goBodies []*ast.FuncLit
	emit     func(label string, pos token.Pos, root types.Object, via string)
}

func (sc *mixScanner) access(label string, pos token.Pos, root types.Object, via string) {
	if label == "" || len(sc.held) > 0 {
		return
	}
	sc.emit(label, pos, root, via)
}

func (sc *mixScanner) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			sc.stmt(st)
		}
	case *ast.ExprStmt:
		sc.expr(s.X, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			sc.expr(e, false)
		}
		for _, e := range s.Lhs {
			sc.expr(e, false)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.expr(v, false)
					}
				}
			}
		}
	case *ast.IfStmt:
		sc.stmt(s.Init)
		sc.expr(s.Cond, false)
		sc.stmt(s.Body)
		sc.stmt(s.Else)
	case *ast.ForStmt:
		sc.stmt(s.Init)
		sc.expr(s.Cond, false)
		sc.stmt(s.Body)
		sc.stmt(s.Post)
	case *ast.RangeStmt:
		sc.expr(s.X, false)
		sc.stmt(s.Body)
	case *ast.SwitchStmt:
		sc.stmt(s.Init)
		sc.expr(s.Tag, false)
		sc.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		sc.stmt(s.Init)
		sc.stmt(s.Assign)
		sc.stmt(s.Body)
	case *ast.SelectStmt:
		sc.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			sc.expr(e, false)
		}
		for _, st := range s.Body {
			sc.stmt(st)
		}
	case *ast.CommClause:
		sc.stmt(s.Comm)
		for _, st := range s.Body {
			sc.stmt(st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			sc.expr(e, false)
		}
	case *ast.SendStmt:
		sc.expr(s.Chan, false)
		sc.expr(s.Value, false)
	case *ast.DeferStmt:
		sc.expr(s.Call, true)
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			sc.goBodies = append(sc.goBodies, lit)
		}
		for _, a := range s.Call.Args {
			sc.expr(a, false)
		}
	case *ast.LabeledStmt:
		sc.stmt(s.Stmt)
	case *ast.IncDecStmt:
		sc.expr(s.X, false)
	}
}

func (sc *mixScanner) expr(e ast.Expr, deferred bool) {
	switch e := ast.Unparen(e).(type) {
	case nil:
	case *ast.CallExpr:
		if label := atomicOperandLabel(sc.pass, e); label != "" {
			// The atomic access itself: skip its operand selector, walk
			// the base and the remaining arguments.
			if un, ok := ast.Unparen(e.Args[0]).(*ast.UnaryExpr); ok {
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					sc.expr(sel.X, false)
				}
			}
			for _, a := range e.Args[1:] {
				sc.expr(a, false)
			}
			return
		}
		for _, a := range e.Args {
			sc.expr(a, false)
		}
		if label, op := mutexOpOn(sc.pass, e); label != "" {
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				sc.held = append(sc.held, label)
			case "Unlock", "RUnlock":
				if !deferred {
					for i := len(sc.held) - 1; i >= 0; i-- {
						if sc.held[i] == label {
							sc.held = append(sc.held[:i], sc.held[i+1:]...)
							break
						}
					}
				}
			}
			return
		}
		if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			sc.stmt(lit.Body)
			return
		}
		sc.expr(e.Fun, false)
		fn := calleeFunc(sc.pass.Info, e)
		if fn == nil {
			return
		}
		s := sc.ix.Summary(fn)
		if s == nil || len(s.MixPlain) == 0 {
			return
		}
		var recvExpr ast.Expr
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if sg, _ := fn.Type().(*types.Signature); sg != nil && sg.Recv() != nil {
				recvExpr = sel.X
			}
		}
		labels := make([]string, 0, len(s.MixPlain))
		for l := range s.MixPlain {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, label := range labels {
			mapEachAliasedOperand(s.MixPlain[label], fn, e.Args, func(i int) {
				operand := recvExpr
				if i >= 0 {
					operand = e.Args[i]
				}
				if operand == nil {
					return
				}
				var root types.Object
				if id := rootIdent(operand); id != nil {
					root = sc.pass.Info.ObjectOf(id)
				}
				sc.access(label, e.Pos(), root, fn.Name())
			})
		}
	case *ast.FuncLit:
		// A literal bound or passed as a callback most often runs
		// synchronously under the current held set; go-launched
		// literals are handled at GoStmt.
		sc.stmt(e.Body)
	case *ast.SelectorExpr:
		if label := plainAccessLabel(sc.pass, e); label != "" {
			var root types.Object
			if id := rootIdent(e); id != nil {
				root = sc.pass.Info.ObjectOf(id)
			}
			sc.access(label, e.Pos(), root, "")
		}
		sc.expr(e.X, false)
	case *ast.Ident:
		if label := plainAccessLabel(sc.pass, e); label != "" {
			sc.access(label, e.Pos(), sc.pass.Info.ObjectOf(e), "")
		}
	case *ast.UnaryExpr:
		sc.expr(e.X, false)
	case *ast.BinaryExpr:
		sc.expr(e.X, false)
		sc.expr(e.Y, false)
	case *ast.StarExpr:
		sc.expr(e.X, false)
	case *ast.IndexExpr:
		sc.expr(e.X, false)
		sc.expr(e.Index, false)
	case *ast.IndexListExpr:
		sc.expr(e.X, false)
	case *ast.SliceExpr:
		sc.expr(e.X, false)
		sc.expr(e.Low, false)
		sc.expr(e.High, false)
		sc.expr(e.Max, false)
	case *ast.TypeAssertExpr:
		sc.expr(e.X, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			sc.expr(el, false)
		}
	case *ast.KeyValueExpr:
		sc.expr(e.Value, false)
	}
}

// ---- the analyzer ----

func runAtomicMix(pass *Pass) {
	ix := pass.Index
	if ix == nil {
		// -interproc=off: degrade to this package's own facts with
		// helpers opaque.
		pkg := &Package{Path: pass.Path, Fset: pass.Fset, Files: pass.Files,
			Types: pass.Pkg, Info: pass.Info}
		ix = &SummaryIndex{atomicSites: map[string][]mixSite{}}
		collectAtomicSites(pkg, ix)
		sortAtomicSites(ix)
		collectPlainMixSites(pkg, ix)
	}
	for _, s := range ix.plainSites {
		if s.pkg != pass.Path {
			continue
		}
		w := ix.atomicSites[s.label][0]
		if s.via != "" {
			pass.Reportf(declPos(pass, s.pos),
				"%s is accessed via sync/atomic (e.g. %s:%d in %s) but %s, reached from this call in %s, loads or stores it plainly with no lock held; use sync/atomic there too or guard both sites with one mutex",
				s.label, shortPath(w.pos.Filename), w.pos.Line, w.fn, s.via, s.fn)
		} else {
			pass.Reportf(declPos(pass, s.pos),
				"%s is accessed via sync/atomic (e.g. %s:%d in %s) but %s loads or stores it plainly here with no lock held; use sync/atomic for every access or guard both sites with one mutex",
				s.label, shortPath(w.pos.Filename), w.pos.Line, w.fn, s.fn)
		}
	}
}
