package analysis

import (
	"go/ast"
	"go/types"
)

// HookReent proves that callbacks registered on the store commit hook
// (Store.OnCommit — the matview maintenance path) cannot reach a
// store mutation or acquire a lock on any synchronous interprocedural
// path. fireCommit runs the hooks with every store lock released but
// still inside the committing writer's call frame: a hook that
// re-enters Store.Add deadlocks-or-recurses the commit pipeline, and
// a hook that takes locks couples the commit latency to arbitrary
// subsystem contention.
//
// Lock acquisitions travel through the HookLocks summary field —
// computed like Locks but excluding go-launched literals (a goroutine
// spawned by a hook leaves the commit path) — and can be exempted
// after review by annotating the hook function:
//
//	//lodlint:lockorder nolock — brief leaf lock, never held across evaluation
//
// The exemption covers lock findings only; a path to a store mutation
// (the MutatesStore summary field) is never exempt.
//
// Hooks passed as opaque func values (built elsewhere, stored in a
// variable) are invisible; literals and named functions/method values
// — every registration shape the repo uses — are checked. With
// -interproc=off only literal hooks' direct operations are checked.
var HookReent = &Analyzer{
	Name: "hookreent",
	Doc:  "proves Store.OnCommit callbacks reach no store mutation or lock acquisition on the commit path",
	Run:  runHookReent,
}

// storeMutatingMethods lists the store entry points that mutate the
// quad store, keyed Type.Method. Txn.Add/Remove only stage; Commit
// applies.
var storeMutatingMethods = map[string]bool{
	"Store.Add":             true,
	"Store.AddTriple":       true,
	"Store.MustAdd":         true,
	"Store.Remove":          true,
	"Store.LoadNQuads":      true,
	"Store.LoadFile":        true,
	"Store.addIDs":          true,
	"Store.removeIDs":       true,
	"Store.applyStaged":     true,
	"Txn.Commit":            true,
	"BulkLoader.AddBatch":   true,
	"BulkLoader.applyShard": true,
}

// storeMutatingCall names the store mutation a call performs, or "".
func storeMutatingCall(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != storePkgPath {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	n := namedOrPtr(sig.Recv().Type())
	if n == nil || n.Obj() == nil {
		return ""
	}
	if !storeMutatingMethods[n.Obj().Name()+"."+fn.Name()] {
		return ""
	}
	return "(*store." + n.Obj().Name() + ")." + fn.Name()
}

// storeMutationWitness describes how fd reaches a store mutation
// synchronously, "" when it provably does not — the MutatesStore
// summary field. Go statements are excluded (their argument
// evaluation is not): the spawned goroutine runs outside the caller's
// frame, so a hook that hands the delta to a worker is the sanctioned
// shape, not a violation.
func storeMutationWitness(pass *Pass, fd *ast.FuncDecl, ix *SummaryIndex) string {
	if fd.Body == nil {
		return ""
	}
	return storeMutationIn(pass, fd.Body, ix)
}

func storeMutationIn(pass *Pass, root ast.Node, ix *SummaryIndex) string {
	witness := ""
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if witness != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				for _, a := range n.Call.Args {
					walk(a)
				}
				return false
			case *ast.CallExpr:
				if name := storeMutatingCall(pass, n); name != "" {
					witness = "calls " + name
					return false
				}
				if fn := calleeFunc(pass.Info, n); fn != nil {
					if s := ix.Summary(fn); s != nil && s.MutatesStore != "" {
						witness = "calls " + fn.Name() + ", which " + s.MutatesStore
						return false
					}
				}
			}
			return true
		})
	}
	walk(root)
	return witness
}

// ---- the analyzer ----

func runHookReent(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Name() != "OnCommit" || !isMethodOn(fn, storePkgPath, "Store") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			checkHookArg(pass, call.Args[0])
			return true
		})
	}
}

// checkHookArg dispatches on the registration shape: a function
// literal is walked directly; a named function or method value is
// judged by its summary.
func checkHookArg(pass *Pass, arg ast.Expr) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		checkHookLit(pass, e)
		return
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[e].(*types.Func); ok {
			checkHookFunc(pass, arg, fn)
		}
		return
	case *ast.SelectorExpr:
		if mv := methodValueFunc(pass, arg); mv != nil {
			checkHookFunc(pass, arg, mv)
			return
		}
		if fn, ok := pass.Info.Uses[e.Sel].(*types.Func); ok {
			checkHookFunc(pass, arg, fn)
		}
	}
}

// checkHookFunc judges a named hook by its HookLocks and MutatesStore
// summaries. A `//lodlint:lockorder nolock` annotation on the hook
// pins its HookLocks empty, so reviewed acquisitions pass silently;
// MutatesStore is never exempt.
func checkHookFunc(pass *Pass, arg ast.Expr, fn *types.Func) {
	if pass.Index == nil {
		return
	}
	s := pass.Index.Summary(fn)
	if s == nil {
		return
	}
	for _, l := range s.HookLocks {
		pass.Reportf(arg.Pos(),
			"commit hook %s acquires %s on the commit path; hooks run inside the committing writer's frame — move the work behind a channel/goroutine, or annotate %s with //lodlint:lockorder nolock <reason> after review",
			fn.Name(), l, fn.Name())
	}
	if s.MutatesStore != "" {
		pass.Reportf(arg.Pos(),
			"commit hook %s can re-enter a store mutation (it %s); OnCommit callbacks must never mutate the store — hand the delta to a worker goroutine instead",
			fn.Name(), s.MutatesStore)
	}
}

// checkHookLit walks a literal hook's body: direct lock acquisitions
// and store mutations are reported in place, callees are judged by
// their summaries, and go statements are excluded like everywhere
// else on the hook path.
func checkHookLit(pass *Pass, lit *ast.FuncLit) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				for _, a := range n.Call.Args {
					walk(a)
				}
				return false
			case *ast.CallExpr:
				if label, op := mutexOpOn(pass, n); label != "" {
					switch op {
					case "Lock", "RLock", "TryLock", "TryRLock":
						pass.Reportf(n.Pos(),
							"commit hook acquires %s on the commit path; hooks run inside the committing writer's frame — move the work behind a channel/goroutine, or register a reviewed named function annotated //lodlint:lockorder nolock <reason>",
							label)
					}
					return true
				}
				if name := storeMutatingCall(pass, n); name != "" {
					pass.Reportf(n.Pos(),
						"commit hook calls %s on the commit path; OnCommit callbacks must never mutate the store — hand the delta to a worker goroutine instead",
						name)
					return true
				}
				fn := calleeFunc(pass.Info, n)
				if fn == nil || pass.Index == nil {
					return true
				}
				if s := pass.Index.Summary(fn); s != nil {
					for _, l := range s.HookLocks {
						pass.Reportf(n.Pos(),
							"commit hook acquires %s via call to %s on the commit path; move the work behind a channel/goroutine, or annotate %s with //lodlint:lockorder nolock <reason> after review",
							l, fn.Name(), fn.Name())
					}
					if s.MutatesStore != "" {
						pass.Reportf(n.Pos(),
							"commit hook can re-enter a store mutation via call to %s (it %s); OnCommit callbacks must never mutate the store",
							fn.Name(), s.MutatesStore)
					}
				}
			}
			return true
		})
	}
	walk(lit.Body)
}
