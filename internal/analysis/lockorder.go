package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the static lock-acquisition graph — an edge A→B
// for every site that acquires mutex B while holding mutex A — and
// reports (1) cycles, each with a witness path, and (2) violations of
// the declared order. The declared order is the contract the shard
// refactor will be built against (ROADMAP: kill the global st.mu):
//
//	//lodlint:lockorder Store.mu < dict.mu
//
// declares that Store.mu must be acquired before dict.mu wherever the
// two nest; chains (`A.mu < B.mu < C.mu`) declare the pairwise orders
// transitively. Locks are identified instance-blind by owner type and
// field (`Store.mu`, `dict.mu`): two instances of the same type count
// as one lock, which over-approximates (sound for deadlock freedom —
// an ordered pair of instances of one type still needs an external
// tiebreak) and keeps the graph finite.
//
// Interprocedural edges come from the summary index: holding A across
// a call whose summary acquires B adds A→B. Calls through function
// values are invisible to the graph (the obs gauge-func pattern);
// with -interproc=off the graph degrades to per-package direct edges.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags lock-acquisition cycles and violations of the declared //lodlint:lockorder order",
	Run:  runLockOrder,
}

// lockEdge is one observed nested acquisition: to was acquired while
// from was held.
type lockEdge struct {
	from, to string
	// pkg owns the acquire site (the pass that reports on this edge).
	pkg string
	pos token.Position
	// fn names the function containing the site; via names the callee
	// whose summary contributed the acquisition ("" = direct).
	fn  string
	via string
}

// lockDecl is one parsed //lodlint:lockorder chain.
type lockDecl struct {
	labels []string
	pkg    string
	pos    token.Position
	// err records a grammar problem ("" = well-formed).
	err string
}

// lockOrder is the declared partial order with its transitive closure.
type lockOrder struct {
	decls []lockDecl
	// before[a][b]: a must be acquired before b.
	before map[string]map[string]bool
	// declAt locates the declaration that introduced each direct pair,
	// for citation in violation messages.
	declAt map[string]token.Position
	// conflicts are pairs declared in both directions.
	conflicts []lockConflict
}

type lockConflict struct {
	a, b string
	pkg  string
	pos  token.Position
}

const lockOrderPrefix = "//lodlint:lockorder"

// parseLockDecls extracts the //lodlint:lockorder declarations of one
// package. Grammar: a "<"-separated chain of Type.field labels. Lines
// using the `nolock` keyword are a separate declaration form handled
// by parseNolockDecls and are skipped here.
func parseLockDecls(pkg *Package) []lockDecl {
	var out []lockDecl
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, lockOrderPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == "nolock" {
					continue
				}
				d := lockDecl{pkg: pkg.Path, pos: pkg.Fset.Position(c.Pos())}
				parts := strings.Split(rest, "<")
				for _, p := range parts {
					p = strings.TrimSpace(p)
					if !validLockLabel(p) {
						d.err = fmt.Sprintf("malformed lock label %q (want Type.field, e.g. Store.mu)", p)
						break
					}
					d.labels = append(d.labels, p)
				}
				if d.err == "" && len(d.labels) < 2 {
					d.err = "a lockorder declaration needs at least two labels (A.f < B.g)"
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func validLockLabel(s string) bool {
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return false
	}
	for i, r := range s {
		if i == dot {
			continue
		}
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			r >= '0' && r <= '9') {
			return false
		}
	}
	return strings.IndexByte(s[dot+1:], '.') < 0
}

// ---- nolock region annotations ----

// nolockDecl is one parsed `//lodlint:lockorder nolock <reason>`
// annotation: a reviewed exception marking a function whose lock
// acquisitions are sanctioned on the store commit-hook path (the
// matview enqueue shape: a leaf lock held briefly, never across
// evaluation). hookreent exempts the annotated function's lock
// acquisitions; store mutations are never exempt.
type nolockDecl struct {
	// key is the FuncKey of the annotated declaration ("" when the
	// annotation is malformed or unattached).
	key    string
	reason string
	pkg    string
	pos    token.Position
	// err records a grammar problem ("" = well-formed).
	err string
}

// cutNolock splits a comment into the text after the `nolock` keyword
// of a `//lodlint:lockorder nolock ...` line, or ok=false.
func cutNolock(text string) (rest string, ok bool) {
	rest, ok = strings.CutPrefix(text, lockOrderPrefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || fields[0] != "nolock" {
		return "", false
	}
	i := strings.Index(rest, "nolock")
	return rest[i+len("nolock"):], true
}

// parseNolockDecls extracts the nolock annotations of one package. An
// annotation must sit in the doc comment of the function it reviews
// and carry a reason (any text after the keyword, with an optional
// leading dash) — the same "documented debt" policy as
// //lodlint:ignore. Floating annotations and reasonless ones are
// grammar errors reported by lockorder.
func parseNolockDecls(pkg *Package) []nolockDecl {
	claimed := map[token.Pos]bool{}
	var out []nolockDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := cutNolock(c.Text)
				if !ok {
					continue
				}
				claimed[c.Pos()] = true
				nd := nolockDecl{pkg: pkg.Path, pos: pkg.Fset.Position(fd.Name.Pos())}
				reason := strings.TrimSpace(strings.TrimLeft(strings.TrimSpace(rest), "—–- \t"))
				if reason == "" {
					nd.err = fmt.Sprintf("the nolock annotation on %s needs a reason: write //lodlint:lockorder nolock — <why these acquisitions are safe on the commit-hook path>", fd.Name.Name)
				} else {
					nd.key = declKey(pkg, fd)
					nd.reason = reason
				}
				out = append(out, nd)
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, ok := cutNolock(c.Text); !ok || claimed[c.Pos()] {
					continue
				}
				out = append(out, nolockDecl{
					pkg: pkg.Path, pos: pkg.Fset.Position(c.Pos()),
					err: "a nolock annotation must sit in the doc comment of the function it reviews",
				})
			}
		}
	}
	return out
}

// buildLockOrder closes the declared pairs transitively and detects
// contradictions.
func buildLockOrder(decls []lockDecl) *lockOrder {
	lo := &lockOrder{
		decls:  decls,
		before: map[string]map[string]bool{},
		declAt: map[string]token.Position{},
	}
	add := func(a, b string, pos token.Position) {
		if lo.before[a] == nil {
			lo.before[a] = map[string]bool{}
		}
		lo.before[a][b] = true
		if _, ok := lo.declAt[a+"<"+b]; !ok {
			lo.declAt[a+"<"+b] = pos
		}
	}
	var labels []string
	seen := map[string]bool{}
	for _, d := range decls {
		if d.err != "" {
			continue
		}
		for i := 0; i+1 < len(d.labels); i++ {
			add(d.labels[i], d.labels[i+1], d.pos)
		}
		for _, l := range d.labels {
			if !seen[l] {
				seen[l] = true
				labels = append(labels, l)
			}
		}
	}
	sort.Strings(labels)
	// Transitive closure (label sets are tiny).
	for _, k := range labels {
		for _, a := range labels {
			if !lo.before[a][k] {
				continue
			}
			for _, b := range labels {
				if lo.before[k][b] {
					add(a, b, lo.declAt[a+"<"+k])
				}
			}
		}
	}
	for _, a := range labels {
		for _, b := range labels {
			if a < b && lo.before[a][b] && lo.before[b][a] {
				pos := lo.declAt[a+"<"+b]
				lo.conflicts = append(lo.conflicts, lockConflict{
					a: a, b: b, pos: pos, pkg: declPkgAt(decls, pos),
				})
			}
		}
	}
	return lo
}

func declPkgAt(decls []lockDecl, pos token.Position) string {
	for _, d := range decls {
		if d.pos == pos {
			return d.pkg
		}
	}
	if len(decls) > 0 {
		return decls[0].pkg
	}
	return ""
}

// ---- acquisition-graph scan ----

// mutexOpOn classifies call as a Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex and returns the lock label, or "".
func mutexOpOn(pass *Pass, call *ast.CallExpr) (label, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isMethodOn(fn, "sync", "Mutex") && !isMethodOn(fn, "sync", "RWMutex") {
		return "", ""
	}
	return lockLabelOf(pass, sel.X), sel.Sel.Name
}

// lockLabelOf names the mutex operand: `st.mu` → "Store.mu" (owner
// struct type + field), a package-level `var mu sync.Mutex` →
// "pkgname.mu". Function-local mutexes and unresolvable shapes yield
// "" and drop out of the graph.
func lockLabelOf(pass *Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		fv, ok := pass.Info.Uses[x.Sel].(*types.Var)
		if !ok || !fv.IsField() {
			return ""
		}
		if n := namedOrPtr(exprType(pass, x.X)); n != nil && n.Obj() != nil {
			return n.Obj().Name() + "." + x.Sel.Name
		}
	case *ast.Ident:
		obj := pass.Info.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok && !v.IsField() &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + x.Name
		}
	}
	return ""
}

// lockScanner walks one synchronous scope maintaining the held-lock
// stack. The walk is linear and branch-blind (like locksafe's held
// scan): a conditionally-acquired lock counts as held afterwards,
// which over-approximates edges — acceptable for a deadlock linter.
type lockScanner struct {
	pass *Pass
	ix   *SummaryIndex
	fn   string
	held []string
	// acquired accumulates every label this scope locked (the Locks
	// summary); edges, when non-nil, collects the nested-acquire edges.
	acquired map[string]bool
	edges    *[]lockEdge
	// goBodies defers go-statement literals for scanning as fresh
	// roots (their held context starts empty on the new goroutine).
	goBodies []*ast.FuncLit
	// hook switches the scan to commit-hook-path semantics: call sites
	// contribute the callee's HookLocks (nolock-reviewed functions
	// contribute nothing) instead of Locks. Consumed by hookreent via
	// the HookLocks summary field.
	hook bool
}

func (sc *lockScanner) addEdge(to, via string, pos token.Pos) {
	if sc.edges == nil {
		return
	}
	for _, h := range sc.held {
		if h == to {
			continue
		}
		*sc.edges = append(*sc.edges, lockEdge{
			from: h, to: to, pkg: sc.pass.Path,
			pos: sc.pass.Fset.Position(pos), fn: sc.fn, via: via,
		})
	}
}

func (sc *lockScanner) acquire(label string, pos token.Pos) {
	sc.addEdge(label, "", pos)
	sc.acquired[label] = true
	sc.held = append(sc.held, label)
}

func (sc *lockScanner) release(label string) {
	for i := len(sc.held) - 1; i >= 0; i-- {
		if sc.held[i] == label {
			sc.held = append(sc.held[:i], sc.held[i+1:]...)
			return
		}
	}
}

func (sc *lockScanner) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			sc.stmt(st)
		}
	case *ast.ExprStmt:
		sc.expr(s.X, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			sc.expr(e, false)
		}
		for _, e := range s.Lhs {
			sc.expr(e, false)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.expr(v, false)
					}
				}
			}
		}
	case *ast.IfStmt:
		sc.stmt(s.Init)
		sc.expr(s.Cond, false)
		sc.stmt(s.Body)
		sc.stmt(s.Else)
	case *ast.ForStmt:
		sc.stmt(s.Init)
		sc.expr(s.Cond, false)
		sc.stmt(s.Body)
		sc.stmt(s.Post)
	case *ast.RangeStmt:
		sc.expr(s.X, false)
		sc.stmt(s.Body)
	case *ast.SwitchStmt:
		sc.stmt(s.Init)
		sc.expr(s.Tag, false)
		sc.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		sc.stmt(s.Init)
		sc.stmt(s.Assign)
		sc.stmt(s.Body)
	case *ast.SelectStmt:
		sc.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			sc.expr(e, false)
		}
		for _, st := range s.Body {
			sc.stmt(st)
		}
	case *ast.CommClause:
		sc.stmt(s.Comm)
		for _, st := range s.Body {
			sc.stmt(st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			sc.expr(e, false)
		}
	case *ast.SendStmt:
		sc.expr(s.Chan, false)
		sc.expr(s.Value, false)
	case *ast.DeferStmt:
		sc.expr(s.Call, true)
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			sc.goBodies = append(sc.goBodies, lit)
		}
		for _, a := range s.Call.Args {
			sc.expr(a, false)
		}
	case *ast.LabeledStmt:
		sc.stmt(s.Stmt)
	case *ast.IncDecStmt:
		sc.expr(s.X, false)
	}
}

func (sc *lockScanner) expr(e ast.Expr, deferred bool) {
	switch e := ast.Unparen(e).(type) {
	case nil:
	case *ast.CallExpr:
		for _, a := range e.Args {
			sc.expr(a, false)
		}
		if label, op := mutexOpOn(sc.pass, e); label != "" {
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				sc.acquire(label, e.Pos())
			case "Unlock", "RUnlock":
				// A deferred unlock keeps the lock held to scope end; a
				// direct unlock closes the region here.
				if !deferred {
					sc.release(label)
				}
			}
			return
		}
		if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			// Immediately-invoked (or deferred) literal runs in this
			// goroutine under the current held set.
			sc.stmt(lit.Body)
			return
		}
		sc.expr(e.Fun, false)
		if fn := calleeFunc(sc.pass.Info, e); fn != nil {
			if s := sc.ix.Summary(fn); s != nil {
				labels := s.Locks
				if sc.hook {
					labels = s.HookLocks
				}
				for _, l := range labels {
					sc.addEdge(l, fn.Name(), e.Pos())
					sc.acquired[l] = true
				}
			}
		}
	case *ast.FuncLit:
		// A literal bound to a variable or passed as a callback most
		// often runs synchronously under the current held set (the
		// st.Match(func(...)...) pattern); go-launched literals are
		// handled at GoStmt.
		sc.stmt(e.Body)
	case *ast.UnaryExpr:
		sc.expr(e.X, false)
	case *ast.BinaryExpr:
		sc.expr(e.X, false)
		sc.expr(e.Y, false)
	case *ast.StarExpr:
		sc.expr(e.X, false)
	case *ast.SelectorExpr:
		sc.expr(e.X, false)
	case *ast.IndexExpr:
		sc.expr(e.X, false)
		sc.expr(e.Index, false)
	case *ast.IndexListExpr:
		sc.expr(e.X, false)
	case *ast.SliceExpr:
		sc.expr(e.X, false)
	case *ast.TypeAssertExpr:
		sc.expr(e.X, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			sc.expr(el, false)
		}
	case *ast.KeyValueExpr:
		sc.expr(e.Value, false)
	}
}

// scanRoots runs the scanner over fd and every go-launched literal in
// it (each on a fresh held stack).
func scanRoots(pass *Pass, ix *SummaryIndex, fd *ast.FuncDecl, edges *[]lockEdge) map[string]bool {
	acquired := map[string]bool{}
	roots := []ast.Stmt{ast.Stmt(fd.Body)}
	name := fd.Name.Name
	for len(roots) > 0 {
		sc := &lockScanner{pass: pass, ix: ix, fn: name, acquired: acquired, edges: edges}
		sc.stmt(roots[0])
		roots = roots[1:]
		for _, lit := range sc.goBodies {
			roots = append(roots, ast.Stmt(lit.Body))
		}
	}
	return acquired
}

// scanFuncLocks returns the sorted lock labels fd acquires (directly
// or via summarized callees) — the Locks field of its summary.
func scanFuncLocks(pass *Pass, fd *ast.FuncDecl, ix *SummaryIndex) []string {
	if fd.Body == nil {
		return nil
	}
	acquired := scanRoots(pass, ix, fd, nil)
	if len(acquired) == 0 {
		return nil
	}
	out := make([]string, 0, len(acquired))
	for l := range acquired {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// scanHookLocks returns the sorted lock labels fd acquires
// synchronously on a commit-hook path — the HookLocks field of its
// summary. Unlike scanFuncLocks, go-launched literals are excluded
// (a goroutine spawned by a hook does not run inside the commit
// path), and callees contribute their HookLocks, so a nolock-reviewed
// helper in the chain contributes nothing.
func scanHookLocks(pass *Pass, fd *ast.FuncDecl, ix *SummaryIndex) []string {
	if fd.Body == nil {
		return nil
	}
	acquired := map[string]bool{}
	sc := &lockScanner{pass: pass, ix: ix, fn: fd.Name.Name, acquired: acquired, hook: true}
	sc.stmt(fd.Body)
	if len(acquired) == 0 {
		return nil
	}
	out := make([]string, 0, len(acquired))
	for l := range acquired {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// collectLockEdges gathers the nested-acquisition edges of one
// package for the global graph.
func collectLockEdges(pkg *Package, ix *SummaryIndex) []lockEdge {
	scratch := []Diagnostic{}
	pass := &Pass{
		Analyzer: summaryAnalyzer, Path: pkg.Path, Fset: pkg.Fset,
		Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, diags: &scratch,
	}
	var edges []lockEdge
	for _, fd := range funcDecls(pkg) {
		scanRoots(pass, ix, fd, &edges)
	}
	return edges
}

// ---- the analyzer ----

func runLockOrder(pass *Pass) {
	var (
		edges    []lockEdge
		declared *lockOrder
	)
	if pass.Index != nil {
		edges = pass.Index.lockEdges
		declared = pass.Index.declared
	} else {
		// -interproc=off: degrade to this package's direct edges and
		// its own declarations.
		pkg := &Package{Path: pass.Path, Fset: pass.Fset, Files: pass.Files,
			Types: pass.Pkg, Info: pass.Info}
		edges = collectLockEdges(pkg, nil)
		declared = buildLockOrder(parseLockDecls(pkg))
	}

	// Malformed or contradictory declarations are findings themselves,
	// owned by the package holding the comment.
	for _, d := range declared.decls {
		if d.err != "" && d.pkg == pass.Path {
			pass.Reportf(declPos(pass, d.pos), "lockorder declaration: %s", d.err)
		}
	}
	var nolockErrs []nolockDecl
	if pass.Index != nil {
		nolockErrs = pass.Index.nolockErrs
	} else {
		pkg := &Package{Path: pass.Path, Fset: pass.Fset, Files: pass.Files,
			Types: pass.Pkg, Info: pass.Info}
		for _, nd := range parseNolockDecls(pkg) {
			if nd.err != "" {
				nolockErrs = append(nolockErrs, nd)
			}
		}
	}
	for _, nd := range nolockErrs {
		if nd.err != "" && nd.pkg == pass.Path {
			pass.Reportf(declPos(pass, nd.pos), "lockorder declaration: %s", nd.err)
		}
	}
	for _, c := range declared.conflicts {
		if c.pkg == pass.Path {
			pass.Reportf(declPos(pass, c.pos),
				"contradictory lockorder declarations: both %s < %s and %s < %s are declared (directly or transitively)",
				c.a, c.b, c.b, c.a)
		}
	}

	// Declared-order violations: an observed edge from→to where the
	// declaration says to < from. Checked at every nested-acquire site
	// this package owns.
	for _, e := range edges {
		if e.pkg != pass.Path {
			continue
		}
		if declared.before[e.to][e.from] {
			site := "acquired directly"
			if e.via != "" {
				site = "acquired via call to " + e.via
			}
			pass.Reportf(declPos(pass, e.pos),
				"lock order violation in %s: %s %s while %s is held, but the declared order (//lodlint:lockorder at %s:%d) requires %s before %s",
				e.fn, e.to, site, e.from,
				shortPath(declared.declAt[e.to+"<"+e.from].Filename), declared.declAt[e.to+"<"+e.from].Line,
				e.to, e.from)
		}
	}

	// Cycles: each reported once, by the pass owning the first edge of
	// the canonical witness.
	for _, cyc := range findLockCycles(edges) {
		if cyc[0].pkg != pass.Path {
			continue
		}
		// A cycle that crosses a declared order is already reported
		// above at its wrong-way edge; the generic cycle report would
		// only advise declaring an order that is already declared.
		violatesDecl := false
		for _, e := range cyc {
			if declared.before[e.to][e.from] {
				violatesDecl = true
				break
			}
		}
		if violatesDecl {
			continue
		}
		var b strings.Builder
		b.WriteString(cyc[0].from)
		for _, e := range cyc {
			fmt.Fprintf(&b, " → %s (%s, %s:%d)", e.to, e.fn, shortPath(e.pos.Filename), e.pos.Line)
		}
		pass.Reportf(declPos(pass, cyc[0].pos),
			"lock-acquisition cycle: %s; two goroutines interleaving these chains deadlock — pick one order and declare it with //lodlint:lockorder",
			b.String())
	}
}

// findLockCycles returns every elementary cycle in the edge set as a
// witness edge path, canonicalized (rotated to start at the smallest
// label, deduplicated) and sorted for deterministic output.
func findLockCycles(edges []lockEdge) [][]lockEdge {
	adj := map[string][]lockEdge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	for from := range adj {
		es := adj[from]
		sort.Slice(es, func(i, j int) bool {
			if es[i].to != es[j].to {
				return es[i].to < es[j].to
			}
			if es[i].pos.Filename != es[j].pos.Filename {
				return es[i].pos.Filename < es[j].pos.Filename
			}
			return es[i].pos.Line < es[j].pos.Line
		})
		// One witness edge per (from, to) pair keeps paths canonical.
		dedup := es[:0]
		for _, e := range es {
			if len(dedup) > 0 && dedup[len(dedup)-1].to == e.to {
				continue
			}
			dedup = append(dedup, e)
		}
		adj[from] = dedup
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var cycles [][]lockEdge
	seen := map[string]bool{}
	var path []lockEdge
	onPath := map[string]int{}
	var dfs func(n string)
	dfs = func(n string) {
		onPath[n] = len(path)
		for _, e := range adj[n] {
			if i, ok := onPath[e.to]; ok {
				cyc := append(append([]lockEdge{}, path[i:]...), e)
				cyc = rotateCycle(cyc)
				key := cycleKey(cyc)
				if !seen[key] {
					seen[key] = true
					cycles = append(cycles, cyc)
				}
				continue
			}
			path = append(path, e)
			dfs(e.to)
			path = path[:len(path)-1]
		}
		delete(onPath, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycleKey(cycles[i]) < cycleKey(cycles[j]) })
	return cycles
}

func rotateCycle(cyc []lockEdge) []lockEdge {
	min := 0
	for i := range cyc {
		if cyc[i].from < cyc[min].from {
			min = i
		}
	}
	return append(append([]lockEdge{}, cyc[min:]...), cyc[:min]...)
}

func cycleKey(cyc []lockEdge) string {
	var b strings.Builder
	for _, e := range cyc {
		b.WriteString(e.from)
		b.WriteString("→")
	}
	return b.String()
}

// declPos converts a resolved token.Position back into a pos within
// this pass's fileset so Reportf renders the right location. The
// position was produced by the same shared FileSet, so a direct
// search over its files recovers the token.Pos.
func declPos(pass *Pass, p token.Position) token.Pos {
	var found token.Pos
	pass.Fset.Iterate(func(f *token.File) bool {
		if f.Name() == p.Filename && p.Offset < f.Size() {
			found = f.Pos(p.Offset)
			return false
		}
		return true
	})
	if found == token.NoPos {
		// Fall back to the first file of the pass; the rendered
		// file/line comes from the Position either way for edges that
		// resolved, so this only guards pathological cases.
		if len(pass.Files) > 0 {
			return pass.Files[0].Pos()
		}
	}
	return found
}

func shortPath(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
