// Package interprocfix exercises the v3 summary index through the
// call-graph shapes the intraprocedural analyzers cannot see: generic
// helpers (one summary on the generic origin, applied at every
// instantiation) and method values (lease.Release bound, stashed, or
// passed to a runner), each paired with a compliant twin.
package interprocfix

import (
	"strings"

	"lodify/internal/rdf"
	"lodify/internal/store"
)

// recvOne is a generic blocking helper: nothing in its signature says
// "blocking", only the summary of its body does.
func recvOne[T any](ch chan T) T { return <-ch }

// WaitUnderLease blocks through the generic helper while the lease
// pins the store's read lock.
func WaitUnderLease(st *store.Store, ch chan int) int {
	lease := st.ReadLease()
	defer lease.Release()
	return recvOne(ch) + lease.CountIDs(0, 0, 0, store.AnyGraph) // want "recvOne, which blocks on a channel operation"
}

// saved models a registry that holds callbacks beyond this package's
// control.
var saved func()

// keep stores the handle without invoking it.
func keep(f func()) { saved = f }

// StashedRelease hands its Release method value away without calling
// it: every exit of this function still holds the read lock.
func StashedRelease(st *store.Store) int {
	lease := st.ReadLease() // want "path to function exit without Release"
	keep(lease.Release)
	return lease.CountIDs(0, 0, 0, store.AnyGraph)
}

// runThen invokes the callback it is given; its summary records the
// invoked parameter.
func runThen(f func()) { f() }

// RunnerRelease is compliant: runThen(lease.Release) releases before
// the return.
func RunnerRelease(st *store.Store) int {
	lease := st.ReadLease()
	n := lease.CountIDs(0, 0, 0, store.AnyGraph)
	runThen(lease.Release)
	return n
}

// BoundRelease is compliant: the bound handle rel releases the lease
// on every exit.
func BoundRelease(st *store.Store) int {
	lease := st.ReadLease()
	rel := lease.Release
	defer rel()
	return lease.CountIDs(0, 0, 0, store.AnyGraph)
}

// firstOf threads a batch element straight through: the generic
// summary maps its result onto the parameter.
func firstOf[S ~[]rdf.Quad](batch S) rdf.Quad { return batch[0] }

// LeakFirst keeps a quad that aliased the parse buffer through the
// generic helper.
func LeakFirst(src string) (rdf.Quad, error) {
	var first rdf.Quad
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		if len(batch) > 0 {
			first = firstOf(batch) // want "assigned to a captured variable"
		}
		return nil
	})
	return first, err
}

// cloneAll is the compliant twin: it clones every element, so its
// summary aliases nothing.
func cloneAll[S ~[]rdf.Quad](batch S) []rdf.Quad {
	out := make([]rdf.Quad, 0, len(batch))
	for _, q := range batch {
		out = append(out, q.Clone())
	}
	return out
}

// KeepClones retains only cloned quads through the generic helper.
func KeepClones(src string) ([]rdf.Quad, error) {
	var kept []rdf.Quad
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		kept = append(kept, cloneAll(batch)...)
		return nil
	})
	return kept, err
}
