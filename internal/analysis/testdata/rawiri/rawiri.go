// Package rawiritest seeds rawiri violations for the analyzer tests.
// Loaded by LoadFixture under the import path
// "lodify/internal/rawiritest" — in scope for the rule (anything
// outside internal/rdf is).
package rawiritest

import (
	"fmt"

	"lodify/internal/rdf"
)

const base = "http://example.org/"

func profileIRI(user string) string {
	return base + "people/" + user // want "string concatenation"
}

func photoIRI(id int) string {
	return fmt.Sprintf("http://example.org/photo/%d", id) // want "fmt.Sprintf"
}

func albumIRI(id int) string {
	return fmt.Sprintf("%salbum/%d", base, id) // want "fmt.Sprintf"
}

// A long chain must produce exactly one finding (the top of the
// chain), not one per interior sub-chain.
func fragmentIRI(host, p, frag string) string {
	return "https://" + host + "/" + p + "#" + frag // want "string concatenation"
}

func minted(user string) rdf.Term {
	return rdf.MustMintIRI(base, "people/", user) // compliant: minting API
}

func sanctioned(user string) rdf.Term {
	return rdf.NewIRI(base + user) // compliant: direct rdf argument
}

func notAnIRI(a, b string) string {
	return a + ":" + b // compliant: no scheme prefix
}
