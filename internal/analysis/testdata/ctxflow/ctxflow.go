// Package ctxfix seeds ctxflow violations for the analyzer tests.
// Loaded under "lodify/internal/resolver/ctxfix" so the rule's
// remote-endpoint package scope applies.
package ctxfix

import (
	"context"
	"net/http"
	"time"

	"lodify/internal/obs"
)

func Fetch(url string) (*http.Response, error) {
	return http.Get(url) // want "no context.Context parameter"
}

func Probe(client *http.Client, url string) error {
	resp, err := client.Head(url) // want "no context.Context parameter"
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func Simulate() {
	time.Sleep(10 * time.Millisecond) // want "latency simulation"
}

func Build(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want "NewRequestWithContext"
}

// FetchCtx threads its context — compliant.
func FetchCtx(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// Handler gets its context from the request — exempt shape.
func Handler(w http.ResponseWriter, r *http.Request) {
	resp, err := http.DefaultClient.Do(r.Clone(r.Context()))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	resp.Body.Close()
}

// TimedFetch shows that observability instrumentation does not excuse
// an exported remote call from taking a context: timing the round trip
// with obs changes nothing about cancellation.
func TimedFetch(url string) (*http.Response, error) {
	defer obs.H("ctxfix_fetch_seconds").ObserveSince(time.Now())
	return http.Get(url) // want "no context.Context parameter"
}

// TracedProbe sleeps inside a span but still has no way to be
// cancelled — instrumented latency simulation is still a violation.
func TracedProbe() {
	_, sp := obs.StartSpan(context.Background(), "ctxfix.probe")
	defer sp.End(context.Background())
	time.Sleep(5 * time.Millisecond) // want "latency simulation"
}

// SpanFetch threads one context through both the span and the request
// — the compliant obs-instrumented shape.
func SpanFetch(ctx context.Context, url string) (*http.Response, error) {
	ctx, sp := obs.StartSpan(ctx, "ctxfix.fetch")
	defer sp.End(ctx)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// unexported helpers are the caller's responsibility — out of scope.
func fetch(url string) (*http.Response, error) {
	return http.Get(url)
}
