// Command fixturecli seeds errdrop violations for the analyzer tests.
// Loaded under "lodify/cmd/fixturecli" so the binaries-only scope
// applies.
package main

import (
	"fmt"
	"os"
	"strings"
)

func step() error { return nil }

func count() (int, error) { return 0, nil }

func main() {
	step()                              // want "discarded"
	n, _ := count()                     // want "assigned to _"
	_ = step()                          // want "assigned to _"
	fmt.Println(n)                      // compliant: fmt print family
	fmt.Fprintln(os.Stderr, "progress") // compliant: std stream
	var b strings.Builder
	b.WriteString("ok") // compliant: in-memory writer never fails
	fmt.Println(b.String())

	f, err := os.Open(os.DevNull)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close() // compliant: deferred close idiom

	if err := step(); err != nil { // compliant: handled
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
