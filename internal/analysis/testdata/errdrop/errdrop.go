// Command fixturecli seeds errdrop violations for the analyzer tests.
// Loaded under "lodify/cmd/fixturecli" so the binaries-only scope
// applies.
package main

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func step() error { return nil }

func count() (int, error) { return 0, nil }

var errEmpty = errors.New("empty")

func firstOrErr[T any](xs []T) (T, error) {
	var zero T
	if len(xs) == 0 {
		return zero, errEmpty
	}
	return xs[0], nil
}

func drain[T any](xs []T) error {
	if len(xs) == 0 {
		return errEmpty
	}
	return nil
}

func main() {
	step()                              // want "discarded"
	n, _ := count()                     // want "assigned to _"
	_ = step()                          // want "assigned to _"
	fmt.Println(n)                      // compliant: fmt print family
	fmt.Fprintln(os.Stderr, "progress") // compliant: std stream
	var b strings.Builder
	b.WriteString("ok") // compliant: in-memory writer never fails
	fmt.Println(b.String())

	f, err := os.Open(os.DevNull)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close() // compliant: deferred close idiom

	if err := step(); err != nil { // compliant: handled
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Generic callees: inferred and explicitly instantiated calls must
	// resolve the same as monomorphic ones.
	xs := []int{1, 2}
	drain(xs)              // want "discarded"
	drain[int](xs)         // want "discarded"
	v, _ := firstOrErr(xs) // want "assigned to _"
	fmt.Println(v)
	if w, err := firstOrErr[int](xs); err == nil { // compliant: handled
		fmt.Println(w)
	}
}
