// Package localfix seeds localid violations for the analyzer tests.
// Loaded under "lodify/internal/sparql/localfix"; it re-declares the
// executor's localIDBit flag and a localDict-shaped minting method so
// the analyzer's source patterns apply exactly as they do in
// internal/sparql.
package localfix

import (
	"lodify/internal/rdf"
	"lodify/internal/store"
)

// localIDBit mirrors the executor's local-id flag: ids with the high
// bit set index the query-local dictionary, not the store's.
const localIDBit = store.TermID(1) << 63

// localDict mirrors the executor's query-local dictionary.
type localDict struct {
	terms []rdf.Term
	ids   map[string]store.TermID
}

// idOf interns t into the local dictionary, minting a high-bit id.
func (d *localDict) idOf(t rdf.Term) store.TermID {
	key := t.String()
	if id, ok := d.ids[key]; ok {
		return id
	}
	id := localIDBit | store.TermID(len(d.terms))
	d.terms = append(d.terms, t)
	if d.ids == nil {
		d.ids = map[string]store.TermID{}
	}
	d.ids[key] = id
	return id
}

// CountLocal feeds a freshly minted local id into a store count: the
// high-bit id aliases an arbitrary dictionary entry.
func CountLocal(st *store.Store, base store.TermID) int {
	lid := base | localIDBit
	return st.CountIDs(lid, 0, 0, store.AnyGraph) // want "query-local id"
}

// TermOfLocal resolves a minted id against the store dictionary
// instead of the local one.
func TermOfLocal(st *store.Store, d *localDict, t rdf.Term) rdf.Term {
	id := d.idOf(t)
	return st.TermOf(id) // want "query-local id"
}

// MatchLocal scans with a local id as a pattern component.
func MatchLocal(st *store.Store, base store.TermID) int {
	lease := st.ReadLease()
	defer lease.Release()
	lid := base | localIDBit
	n := 0
	lease.MatchIDs(lid, 0, 0, store.AnyGraph, func(s, p, o, g store.TermID) bool { // want "query-local id"
		n++
		return true
	})
	return n
}

// ShardRouteLocal routes with a minted id: ShardOf hashes the (graph,
// subject) pair, so a local id picks an arbitrary shard that never
// holds the subject's quads.
func ShardRouteLocal(st *store.Store, base store.TermID) int {
	lid := base | localIDBit
	return st.ShardOf(0, lid) // want "query-local id"
}

// CountStore passes a store-dictionary id straight through: compliant.
func CountStore(st *store.Store, t rdf.Term) int {
	id, ok := st.LookupID(t)
	if !ok {
		return 0
	}
	return st.CountIDs(id, 0, 0, store.AnyGraph)
}

// ResolveLocal is the materialization boundary the executor uses:
// local ids resolve through the local dictionary (flag masked off to
// recover the index), store ids through the store. Compliant.
func ResolveLocal(d *localDict, st *store.Store, id store.TermID) rdf.Term {
	if id&localIDBit != 0 {
		return d.terms[id&^localIDBit]
	}
	return st.TermOf(id)
}

// IsLocal only tests the flag — comparisons carry no id. Compliant.
func IsLocal(d *localDict, t rdf.Term) bool {
	return d.idOf(t)&localIDBit != 0
}

// ---- interprocedural cases: visible only through summaries ----

// countThrough forwards an id into a store count: a sink one hop out.
func countThrough(st *store.Store, id store.TermID) int {
	return st.CountIDs(id, 0, 0, store.AnyGraph)
}

// CountViaHelper sinks a minted id through the helper: v2 saw an
// opaque call, v3 maps the argument onto the helper's sink parameter.
func CountViaHelper(st *store.Store, base store.TermID) int {
	lid := base | localIDBit
	return countThrough(st, lid) // want "via call to countThrough"
}

// maskAndResolve dispatches on the flag before any store lookup — the
// executor's localDict.termOf idiom. On the path that reaches
// st.TermOf the guard was refuted, so the summary records no sink.
func maskAndResolve(st *store.Store, d *localDict, id store.TermID) rdf.Term {
	if id&localIDBit != 0 {
		return d.terms[id&^localIDBit]
	}
	return st.TermOf(id)
}

// ResolveViaHelper is compliant: the helper masks or dispatches, so a
// minted id never reaches the store dictionary.
func ResolveViaHelper(st *store.Store, d *localDict, t rdf.Term) rdf.Term {
	return maskAndResolve(st, d, d.idOf(t))
}
