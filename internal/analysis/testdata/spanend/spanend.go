// Package spanfix seeds spanend violations: spans started via
// obs.StartSpan that are neither ended nor handed off.
package spanfix

import (
	"context"

	"lodify/internal/obs"
)

// Leak starts a span and drops it: never recorded, trace incomplete.
func Leak(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "leak") // want "never ended"
	_ = sp
}

// LeakWithEvent annotates the span but still never ends it; Event is
// not a handoff.
func LeakWithEvent(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "leak-event") // want "never ended"
	sp.Event("halfway")
}

// LeakShadowed reuses the same variable for a second span; both leak
// and each start position is reported.
func LeakShadowed(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "leak-first") // want "never ended"
	sp.Event("first")
	{
		_, sp := obs.StartSpan(ctx, "leak-shadow") // want "never ended"
		sp.Event("second")
	}
}

// EndsDeferred is the canonical correct shape.
func EndsDeferred(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "ok-defer")
	defer sp.End(ctx)
	sp.Event("work")
}

// EndsDirect ends inline; equally fine.
func EndsDirect(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "ok-direct")
	sp.End(ctx)
}

// EndsInClosure ends inside a returned closure: the End call is still
// inside this function body, so the span counts as ended.
func EndsInClosure(ctx context.Context) func() {
	ctx, sp := obs.StartSpan(ctx, "ok-closure")
	return func() { sp.End(ctx) }
}

// HandsOff returns the span: ownership moves to the caller, and the
// rule stays quiet here.
func HandsOff(ctx context.Context) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(ctx, "ok-handoff")
	return ctx, sp
}

// StoresAway parks the span in a struct; also a handoff.
type carrier struct{ sp *obs.Span }

func StoresAway(ctx context.Context, c *carrier) {
	_, sp := obs.StartSpan(ctx, "ok-stored")
	c.sp = sp
}
