// Package locktest seeds locksafe violations for the analyzer tests.
package locktest

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// wrapper nests the lock one struct deep; containsLock must see
// through the nesting.
type wrapper struct {
	c counter
}

func (c counter) bump() { // want "receiver passes a value containing a sync mutex"
	c.n++
}

func snapshot(c counter) counter { // want "parameter passes a value containing a sync mutex" "result passes a value containing a sync mutex"
	return c
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// double re-enters get while holding the same mutex — deadlock with
// sync.Mutex.
func (c *counter) double() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get() * 2 // want "re-locks"
}

// bumpTwice releases before the call — compliant.
func (c *counter) bumpTwice() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.add(1)
}

func copies(w *wrapper) int {
	v := w.c // want "assignment copies a value containing a sync mutex"
	return v.n
}

func total(cs []counter) int {
	t := 0
	for _, c := range cs { // want "range copies a value containing a sync mutex"
		t += c.n
	}
	return t
}

func totalByIndex(cs []counter) int {
	t := 0
	for i := range cs { // compliant: index ranging
		t += cs[i].n
	}
	return t
}
