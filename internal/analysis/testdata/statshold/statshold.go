// Package statsfix seeds statshold violations: per-shard pstats
// counters mutated without the owning shard's write lock, in the call
// shapes the store uses — direct mutation, derived locals, unexported
// helpers judged at their call sites, and the delete builtin. Writes
// under Lock (directly or via a lock-acquiring callee, the lockShards
// shape) and merges into caller-local records stay silent, and RLock
// is deliberately insufficient.
package statsfix

import "sync"

// predStat is the per-predicate record held in pstats — the payload
// type statshold tracks through derivations and parameters.
type predStat struct {
	subj, obj int64
}

// shard mirrors the store shard: an RWMutex and the pstats map it
// owns. Recognition is structural (lock field + pstats map field).
type shard struct {
	mu     sync.RWMutex
	pstats map[uint64]*predStat
}

// Bump mutates through the map path with no lock at all.
func (sh *shard) Bump(p uint64) {
	sh.pstats[p].subj++ // want "without shard.mu write-held"
}

// BumpShared holds the read lock — not enough for mutation.
func (sh *shard) BumpShared(p uint64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.pstats[p].obj++ // want "without shard.mu write-held"
}

// Drop mutates through a derived local: the record still lives in
// pstats, so the binding does not launder the obligation.
func (sh *shard) Drop(p uint64) {
	ps := sh.pstats[p]
	ps.subj-- // want "without shard.mu write-held"
}

// Evict removes the record outright — delete is a mutation too.
func (sh *shard) Evict(p uint64) {
	delete(sh.pstats, p) // want "without shard.mu write-held"
}

// BumpLocked is the compliant twin: write lock held across the write.
func (sh *shard) BumpLocked(p uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.pstats[p].subj++
}

// statAdd is the store's statAdd shape: unexported, receiver-rooted
// mutation, documented "caller holds sh.mu" — so the verdict defers
// to each call site's held-lock set.
func (sh *shard) statAdd(p uint64) {
	st := sh.pstats[p]
	st.subj++
}

// Ingest calls the helper with no lock held: the deferred obligation
// lands here.
func (sh *shard) Ingest(p uint64) {
	sh.statAdd(p) // want "without shard.mu write-held"
}

// IngestLocked honors the helper's contract: clean.
func (sh *shard) IngestLocked(p uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.statAdd(p)
}

// lockAll acquires the shard lock for the caller — the lockShards
// shape, where the acquisition lives in a callee.
func (sh *shard) lockAll() { sh.mu.Lock() }

// Rebuild relies on the callee's acquisition: the Locks summary keeps
// the shard write-held (sticky) after lockAll returns.
func (sh *shard) Rebuild(p uint64) {
	sh.lockAll()
	sh.pstats[p].subj++
	sh.mu.Unlock()
}

// MergeInto mutates a caller-provided record: exported, so no call
// site can be consulted and the finding lands here.
func MergeInto(dst *predStat, src *predStat) {
	dst.subj += src.subj // want "mutates per-shard stats through a caller-provided record"
}

// Snapshot merges shard state into a caller-local record under the
// read lock — the PredStatIDs shape. Reads of derived records and
// writes to the local copy are both fine.
func (sh *shard) Snapshot(p uint64) predStat {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out predStat
	if ps, ok := sh.pstats[p]; ok {
		out.subj = ps.subj
		out.obj = ps.obj
	}
	return out
}
