// Package mixfix seeds atomicmix violations: counter fields touched
// via sync/atomic at one site and plainly at another, mirroring the
// obs registry-counter shape (atomic hot-path increments, snapshot
// reads). Plain accesses under the owning mutex, typed atomics, and
// fields with no atomic history stay silent.
package mixfix

import (
	"sync"
	"sync/atomic"
)

// Registry mirrors the obs counter registry: mu guards the slow path,
// hits/misses are bumped atomically on the hot path, evict uses a
// typed atomic (unmixable by construction), and cold has no atomic
// history at all.
type Registry struct {
	mu     sync.Mutex
	hits   int64
	misses int64
	evict  atomic.Int64
	cold   int64
}

// Hit and Miss are the atomic sites that put hits/misses into the
// mixed-access domain.
func (r *Registry) Hit()  { atomic.AddInt64(&r.hits, 1) }
func (r *Registry) Miss() { atomic.AddInt64(&r.misses, 1) }

// Snapshot reads hits plainly with no lock held: racy against Hit.
func (r *Registry) Snapshot() int64 {
	return r.hits // want "Registry.hits is accessed via sync/atomic"
}

// SnapshotLocked reads misses plainly but under r.mu — one mutex
// guarding both sides is an accepted protection scheme.
func (r *Registry) SnapshotLocked() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.misses
}

// bumpMisses is an accessor helper: unexported, param-rooted plain
// write, so the verdict defers to each call site's held-lock set.
func bumpMisses(r *Registry) { r.misses++ }

// Reset reaches the plain write through the helper with no lock held.
func (r *Registry) Reset() {
	bumpMisses(r) // want "but bumpMisses, reached from this call"
}

// ResetLocked reaches the same helper under r.mu: clean.
func (r *Registry) ResetLocked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	bumpMisses(r)
}

// Evict/Evictions use the typed atomic: plain access to an
// atomic.Int64 is impossible, so nothing to report.
func (r *Registry) Evict()           { r.evict.Add(1) }
func (r *Registry) Evictions() int64 { return r.evict.Load() }

// Cold is only ever accessed plainly — no atomic site, no mix.
func (r *Registry) Cold() int64 { return r.cold }

// total is a package-level counter with the same split: atomic
// increment on one path, plain read on another.
var total int64

func addTotal() { atomic.AddInt64(&total, 1) }

// Total reads the package counter plainly with no lock held.
func Total() int64 {
	defer addTotal()
	return total // want "mixfix.total is accessed via sync/atomic"
}
