// Package lockorderfix seeds lockorder violations for the analyzer
// tests: an undeclared two-lock cycle, a violation of a declared
// order, a transitive violation of a declared chain (the shard-store
// shape: Store.mu < shard.mu < dict.mu), a malformed declaration, and
// compliant declared pairs.
//
//lodlint:lockorder Acct.mu < Audit.mu
//lodlint:lockorder Pool.mu < Conn.mu
//lodlint:lockorder Hub.mu < Ring.mu < Node.mu
//lodlint:lockorder Curator.mu < Exhibit.mu
package lockorderfix

import "sync"

// Jobs and Reg nest in both directions with no declared order: a
// deadlock-shaped cycle.
type Jobs struct {
	mu    sync.Mutex
	queue []int
}

type Reg struct {
	mu   sync.Mutex
	jobs *Jobs
}

// FlushJobs locks Reg.mu, then Jobs.mu.
func (r *Reg) FlushJobs() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jobs.mu.Lock()
	r.jobs.queue = nil
	r.jobs.mu.Unlock()
}

// Requeue locks Jobs.mu, then Reg.mu: interleaved with FlushJobs on
// another goroutine, both block forever.
func (j *Jobs) Requeue(r *Reg) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.mu.Lock() // want "lock-acquisition cycle"
	r.jobs = j
	r.mu.Unlock()
}

// Acct and Audit have a declared order (file header): Acct.mu first.
type Acct struct {
	mu  sync.Mutex
	bal int
}

type Audit struct {
	mu  sync.Mutex
	log []string
}

// Backfill acquires against the declared order. Only this direction
// is in the graph, so it is a violation but not (yet) a cycle — the
// declaration exists precisely to flag the first wrong-way site
// before a second function completes the deadlock.
func Backfill(a *Acct, u *Audit) {
	u.mu.Lock()
	defer u.mu.Unlock()
	a.mu.Lock() // want "lock order violation"
	a.bal++
	a.mu.Unlock()
}

// Pool and Conn nest only in the declared direction: compliant.
type Pool struct {
	mu    sync.Mutex
	conns []*Conn
}

type Conn struct {
	mu   sync.Mutex
	busy bool
}

// Checkout respects Pool.mu < Conn.mu.
func (p *Pool) Checkout() *Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.mu.Lock()
		if !c.busy {
			c.busy = true
			c.mu.Unlock()
			return c
		}
		c.mu.Unlock()
	}
	return nil
}

// Hub, Ring and Node mirror the sharded store's three-level chain
// (Store.mu < shard.mu < dict.mu): the chain declaration orders the
// pairs transitively, so Hub.mu < Node.mu holds without being written.
type Hub struct {
	mu    sync.Mutex
	rings []*Ring
}

type Ring struct {
	mu    sync.Mutex
	nodes []*Node
}

type Node struct {
	mu  sync.Mutex
	hot bool
}

// Demote acquires the chain head while the tail is held: no direct
// `Hub.mu < Node.mu` declaration exists, only the transitive closure
// of the chain — the analyzer must still flag it.
func Demote(h *Hub, n *Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h.mu.Lock() // want "lock order violation"
	h.rings = nil
	h.mu.Unlock()
}

// Rebalance respects the chain's first declared pair: compliant.
func Rebalance(h *Hub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.rings {
		r.mu.Lock()
		r.nodes = nil
		r.mu.Unlock()
	}
}

// Curator and Exhibit mirror the materialized-view registry's
// maintenance shape (matview: Registry.mu < View.mu): the registry
// mutex guards the view map, each view guards its rows with an
// RWMutex, and maintenance snapshots under the registry lock before
// folding into the views.
type Curator struct {
	mu       sync.Mutex
	exhibits []*Exhibit
}

type Exhibit struct {
	mu   sync.RWMutex
	rows int
}

// Refold is the compliant maintenance order: snapshot the exhibit list
// under Curator.mu, fold into each exhibit under its own write lock.
func (c *Curator) Refold() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.exhibits {
		e.mu.Lock()
		e.rows++
		e.mu.Unlock()
	}
}

// Adopt re-enters the registry from under a view's read lock — the
// declared order written backwards, including the RLock side of the
// RWMutex. Interleaved with Refold this deadlocks.
func (e *Exhibit) Adopt(c *Curator) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c.mu.Lock() // want "lock order violation"
	n := len(c.exhibits)
	c.mu.Unlock()
	return n + e.rows
}

// The trailing junk makes this declaration unparseable; the analyzer
// reports the grammar error at the comment itself.
//
//lodlint:lockorder Pool.mu < not a label // want "malformed lock label"
var _ = 0

// enqueueExhibit carries a valid nolock review: reason given, sitting
// in the doc comment of the function it exempts. No finding.
//
//lodlint:lockorder nolock — Curator.mu guards only a bounded append here, never held across evaluation
func (c *Curator) enqueueExhibit(e *Exhibit) {
	c.mu.Lock()
	c.exhibits = append(c.exhibits, e)
	c.mu.Unlock()
}

// Purge tries to claim the exemption without saying why: the review
// annotation is the audit record, so a reasonless one is rejected at
// the function it tried to cover.
//
//lodlint:lockorder nolock
func (c *Curator) Purge() { // want "needs a reason"
	c.mu.Lock()
	c.exhibits = nil
	c.mu.Unlock()
}

// A nolock line that floats free of any function reviews nothing.
//
//lodlint:lockorder nolock — reviews nothing from here // want "must sit in the doc comment"
var _ = 1
