// Package ingestfix seeds bufescape violations for the analyzer tests.
// Loaded under "lodify/internal/ingestfix" so it can import the real
// rdf package: the analyzer keys on rdf.ParseNQuadsChunked callbacks
// and the rdf.Quad/rdf.Term types.
package ingestfix

import (
	"strings"

	"lodify/internal/rdf"
)

// batchSink models a struct that outlives the parse.
type batchSink struct {
	first rdf.Quad
}

// LeakAppend retains batch quads in a captured slice without cloning:
// once emit returns, the kept terms alias recycled buffer memory.
func LeakAppend(src string) ([]rdf.Quad, error) {
	var kept []rdf.Quad
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		for _, q := range batch {
			kept = append(kept, q) // want "assigned to a captured variable"
		}
		return nil
	})
	return kept, err
}

// LeakField stores a batch quad into a captured struct field.
func LeakField(src string, sink *batchSink) error {
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		if len(batch) > 0 {
			sink.first = batch[0] // want "stored outside the callback"
		}
		return nil
	})
	return err
}

// LeakSend ships batch terms to a consumer on another goroutine, which
// will read them after the buffer is recycled.
func LeakSend(src string, out chan rdf.Term) error {
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		for _, q := range batch {
			out <- q.S // want "sent on a channel"
		}
		return nil
	})
	return err
}

// LeakGoroutine hands a batch quad to a goroutine that outlives emit.
func LeakGoroutine(src string) error {
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		for _, q := range batch {
			go record(q) // want "passed to a goroutine"
		}
		return nil
	})
	return err
}

func record(rdf.Quad) {}

// CloneBeforeKeep is the compliant shape: each retained quad is cloned
// inside the callback, so nothing aliases the parse buffer.
func CloneBeforeKeep(src string) ([]rdf.Quad, error) {
	var kept []rdf.Quad
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		for _, q := range batch {
			kept = append(kept, q.Clone())
		}
		return nil
	})
	return kept, err
}

// DerivedScalars is also compliant: extracted strings and counts own
// their memory (Term.Value copies into a string header the moment the
// result is used), so no term-shaped value escapes.
func DerivedScalars(src string) ([]string, int, error) {
	var values []string
	n := 0
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		n += len(batch)
		for _, q := range batch {
			values = append(values, q.O.Value())
		}
		return nil
	})
	return values, n, err
}

// ---- interprocedural cases: visible only through summaries ----

// lastSeen models a diagnostics cache that outlives every parse.
var lastSeen rdf.Quad

// remember stores its argument into the package-level cache; only the
// summary reveals the escape to the call site.
func remember(q rdf.Quad) {
	lastSeen = q
}

// LeakViaHelper retains a batch quad through a helper store: v2 saw
// an opaque call, v3 reports the escape at the argument.
func LeakViaHelper(src string) error {
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		for _, q := range batch {
			remember(q) // want "escapes via call to remember"
		}
		return nil
	})
	return err
}

// rememberOwned is the compliant twin: it clones before the store, so
// its summary records no escaping parameter.
func rememberOwned(q rdf.Quad) {
	lastSeen = q.Clone()
}

// KeepViaCloningHelper routes every retained quad through the cloning
// helper: nothing aliases the parse buffer.
func KeepViaCloningHelper(src string) error {
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		for _, q := range batch {
			rememberOwned(q)
		}
		return nil
	})
	return err
}
