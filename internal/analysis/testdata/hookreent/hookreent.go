// Package hookfix seeds hookreent violations against the real store
// package: OnCommit callbacks that acquire locks or re-enter store
// mutations on the synchronous commit path, in every registration
// shape the repo uses (literal, named method value). The sanctioned
// shapes — goroutine handoff, nolock-reviewed bounded append — stay
// silent.
package hookfix

import (
	"sync"

	"lodify/internal/rdf"
	"lodify/internal/store"
)

// cache mirrors the matview registry: a small mutex-guarded queue fed
// by the commit hook.
type cache struct {
	mu   sync.Mutex
	gens []uint64
}

// record takes cache.mu on the commit path without review.
func (c *cache) record(d store.Delta) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens = append(c.gens, d.Epoch)
}

// Watch registers the offending method value.
func (c *cache) Watch(st *store.Store) func() {
	return st.OnCommit(c.record) // want "commit hook record acquires cache.mu"
}

// WatchInline does the same work in a literal hook.
func (c *cache) WatchInline(st *store.Store) func() {
	return st.OnCommit(func(d store.Delta) {
		c.mu.Lock() // want "commit hook acquires cache.mu on the commit path"
		c.gens = append(c.gens, d.Epoch)
		c.mu.Unlock()
	})
}

// enqueue is the reviewed exception: same lock, but annotated after
// review, so hookreent accepts the registration below.
//
//lodlint:lockorder nolock — cache.mu guards only a bounded append here, never held across evaluation or store re-entry
func (c *cache) enqueue(d store.Delta) {
	c.mu.Lock()
	c.gens = append(c.gens, d.Epoch)
	c.mu.Unlock()
}

// WatchReviewed registers the nolock-reviewed hook: clean.
func (c *cache) WatchReviewed(st *store.Store) func() {
	return st.OnCommit(c.enqueue)
}

// Forward hands the delta to a worker goroutine — the sanctioned
// shape for hooks that do real work; the send happens off the commit
// path.
func Forward(st *store.Store, ch chan store.Delta) func() {
	return st.OnCommit(func(d store.Delta) {
		go func() { ch <- d }()
	})
}

// Reinject mutates the store from inside its own commit hook: the
// commit pipeline re-enters itself.
func Reinject(st *store.Store) func() {
	return st.OnCommit(func(d store.Delta) {
		if len(d.Removed) > 0 {
			st.MustAdd(rdf.Quad{}) // want "commit hook calls (*store.Store).MustAdd on the commit path"
		}
	})
}

// mirror replays every committed batch into a second store.
type mirror struct {
	dst *store.Store
}

// apply re-enters a store mutation; the nolock exemption would not
// help here — mutation findings are never exempt.
func (m *mirror) apply(d store.Delta) {
	for range d.Added {
		m.dst.MustAdd(rdf.Quad{})
	}
}

// Attach registers the mutating method value.
func (m *mirror) Attach(st *store.Store) func() {
	return st.OnCommit(m.apply) // want "commit hook apply can re-enter a store mutation"
}
