// Package recvfix probes receiver-routed summary effects.
package recvfix

import (
	"strings"

	"lodify/internal/rdf"
)

type box struct{ q rdf.Quad }

// get returns its receiver's quad: ResultAlias should carry the
// receiver bit.
func (b box) get() rdf.Quad { return b.q }

// getp is the pointer-receiver variant: ResultAlias must route
// through an indirect receiver too.
func (b *box) getp() rdf.Quad { return b.q }

func LeakViaMethod(src string) (rdf.Quad, error) {
	var first rdf.Quad
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		if len(batch) > 0 {
			b := box{q: batch[0]}
			first = b.get() // want "assigned to a captured variable"
		}
		return nil
	})
	return first, err
}

func LeakViaPointerMethod(src string) (rdf.Quad, error) {
	var first rdf.Quad
	_, err := rdf.ParseNQuadsChunked(strings.NewReader(src), rdf.BulkOptions{}, func(batch []rdf.Quad) error {
		if len(batch) > 0 {
			b := &box{q: batch[0]}
			first = b.getp() // want "assigned to a captured variable"
		}
		return nil
	})
	return first, err
}
