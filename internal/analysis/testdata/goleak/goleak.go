// Package goleakfix seeds goleak violations for the analyzer tests:
// fire-and-forget spawns with no completion path, against the
// supervised shapes (WaitGroup, channel, context, lifecycle param)
// the rest of the module uses.
package goleakfix

import (
	"context"
	"sync"
)

// spin churns forever with no lifecycle handle; its summary carries
// Bounded=false to every spawn site.
func spin() {
	n := 0
	for {
		n++
	}
}

// SpawnUnsupervised fires and forgets a named function: nothing can
// await or cancel it.
func SpawnUnsupervised() {
	go spin() // want "goroutine spawned without a completion path"
}

// SpawnBareLiteral leaks a literal with no evidence either: the
// callback func value is unresolvable and carries no lifecycle.
func SpawnBareLiteral(log func(string)) {
	go func() { // want "goroutine spawned without a completion path"
		log("fire and forget")
	}()
}

// SpawnWaited is compliant: WaitGroup accounting bounds the goroutine.
func SpawnWaited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// SpawnChannel is compliant: the spawner holds the other end of out.
func SpawnChannel() chan int {
	out := make(chan int)
	go func() { out <- 1 }()
	return out
}

// drain consumes until its channel closes.
func drain(ch chan int) {
	for range ch {
	}
}

// SpawnDrain is compliant: the channel parameter is the lifecycle
// handle, and drain's summary shows the bounded receive loop.
func SpawnDrain(ch chan int) {
	go drain(ch)
}

// SpawnCtx is compliant: the context bounds the goroutine.
func SpawnCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// SpawnFuncValue is deliberately not flagged: a func-value spawn is
// unresolvable, and the suite stays conservative toward false
// negatives.
func SpawnFuncValue(f func()) {
	go f()
}
