// Package leasefix seeds leasehold violations for the analyzer tests.
// Loaded under "lodify/internal/store/leasefix" so it can use the real
// store.ReadLease / Lease.Release API the analyzer keys on.
package leasefix

import (
	"errors"
	"sync"
	"time"

	"lodify/internal/rdf"
	"lodify/internal/store"
)

var errBoom = errors.New("boom")

// LeakOnError returns early while the lease is still held: the store's
// read lock stays pinned until GC, blocking every writer.
func LeakOnError(st *store.Store, fail bool) (int, error) {
	lease := st.ReadLease() // want "path to function exit without Release"
	if fail {
		return 0, errBoom
	}
	n := lease.CountIDs(0, 0, 0, store.AnyGraph)
	lease.Release()
	return n, nil
}

// LeakOnPanic panics while holding the lease.
func LeakOnPanic(st *store.Store, n int) int {
	lease := st.ReadLease() // want "path to function exit without Release"
	if n < 0 {
		panic("negative count")
	}
	c := lease.CountIDs(0, 0, 0, store.AnyGraph)
	lease.Release()
	return c
}

// HeldAcrossSleep blocks while the read lock pins writers out.
func HeldAcrossSleep(st *store.Store) int {
	lease := st.ReadLease()
	defer lease.Release()
	time.Sleep(time.Millisecond) // want "held across time.Sleep"
	return lease.CountIDs(0, 0, 0, store.AnyGraph)
}

// HeldAcrossStoreCall re-enters a shard lock under the lease: the
// lease already holds every shard's read lock, so with a writer queued
// between the two acquisitions this deadlocks.
func HeldAcrossStoreCall(st *store.Store) int {
	lease := st.ReadLease()
	defer lease.Release()
	return len(st.ShardStats()) + lease.CountIDs(0, 0, 0, store.AnyGraph) // want "held across the store lock method Store.ShardStats"
}

// LenUnderLease is compliant under the shard-lease contract: Len reads
// an atomic counter and takes no shard lock, as do Epoch/NumShards.
func LenUnderLease(st *store.Store) int {
	lease := st.ReadLease()
	defer lease.Release()
	return st.Len() + st.NumShards() + lease.CountIDs(0, 0, 0, store.AnyGraph)
}

// HeldAcrossChannel parks on a channel send while holding the lease.
func HeldAcrossChannel(st *store.Store, out chan int) {
	lease := st.ReadLease()
	defer lease.Release()
	out <- lease.CountIDs(0, 0, 0, store.AnyGraph) // want "held across a channel operation"
}

// DeferRelease is the canonical compliant shape: the deferred Release
// covers every exit, and only Lease methods run under the lock.
func DeferRelease(st *store.Store, fail bool) (int, error) {
	lease := st.ReadLease()
	defer lease.Release()
	if fail {
		return 0, errBoom
	}
	return lease.CountIDs(0, 0, 0, store.AnyGraph), nil
}

// BranchRelease releases explicitly on every exit path: compliant.
func BranchRelease(st *store.Store, fail bool) int {
	lease := st.ReadLease()
	if fail {
		lease.Release()
		return 0
	}
	n := lease.CountIDs(0, 0, 0, store.AnyGraph)
	lease.Release()
	return n
}

// ReleaseThenBlock sleeps only after the lease is gone: compliant.
func ReleaseThenBlock(st *store.Store) int {
	lease := st.ReadLease()
	n := lease.CountIDs(0, 0, 0, store.AnyGraph)
	lease.Release()
	if n > 0 {
		time.Sleep(time.Millisecond)
	}
	return n
}

// ---- the album-maintenance path (matview): bulk apply under lease ----

// MaintainAcrossApply mirrors a broken materialized-view maintainer:
// it pins a read lease while folding a delta through the bulk loader.
// AddBatch wants every shard's write lock; the lease holds the read
// side of those same locks, so with this goroutine both sides deadlock.
func MaintainAcrossApply(st *store.Store, batch []rdf.Quad) (int, error) {
	lease := st.ReadLease()
	defer lease.Release()
	bl := st.NewBulkLoader()
	n, err := bl.AddBatch(batch) // want "held across the bulk-load apply BulkLoader.AddBatch"
	if err != nil {
		return 0, err
	}
	return n + lease.CountIDs(0, 0, 0, store.AnyGraph), nil
}

// MaintainThenApply is the compliant maintenance shape: read what the
// fold needs under the lease, release, then apply with no lease held.
func MaintainThenApply(st *store.Store, batch []rdf.Quad) (int, error) {
	lease := st.ReadLease()
	before := lease.CountIDs(0, 0, 0, store.AnyGraph)
	lease.Release()
	bl := st.NewBulkLoader()
	n, err := bl.AddBatch(batch)
	if err != nil {
		return 0, err
	}
	return before + n, nil
}

// ---- interprocedural cases: visible only through summaries ----

// sleepyLookup blocks inside; the call site shows a plain function
// call, and only the helper's summary carries the evidence.
func sleepyLookup(lease *store.Lease) int {
	time.Sleep(time.Millisecond)
	return lease.CountIDs(0, 0, 0, store.AnyGraph)
}

// HeldAcrossHelper blocks one hop removed: v2 saw an opaque call and
// stayed quiet, v3 chains the helper's blocking evidence.
func HeldAcrossHelper(st *store.Store) int {
	lease := st.ReadLease()
	defer lease.Release()
	return sleepyLookup(lease) // want "sleepyLookup, which blocks on time.Sleep"
}

// openLease wraps ReadLease; its summary marks the result as a fresh
// held lease.
func openLease(st *store.Store) *store.Lease {
	return st.ReadLease()
}

// LeakWrappedAcquire leaks a helper-acquired lease on the error path:
// without the summary no lease is ever tracked here.
func LeakWrappedAcquire(st *store.Store, fail bool) (int, error) {
	lease := openLease(st) // want "path to function exit without Release"
	if fail {
		return 0, errBoom
	}
	n := lease.CountIDs(0, 0, 0, store.AnyGraph)
	lease.Release()
	return n, nil
}

// closeLease releases its argument; the summary's release effect
// keeps callers that route every exit through it compliant.
func closeLease(l *store.Lease) {
	l.Release()
}

// HelperRelease releases through the helper on every path: compliant.
func HelperRelease(st *store.Store, fail bool) int {
	lease := st.ReadLease()
	if fail {
		closeLease(lease)
		return 0
	}
	n := lease.CountIDs(0, 0, 0, store.AnyGraph)
	closeLease(lease)
	return n
}

// WorkerLease matches the parallel-join shape in internal/sparql: each
// goroutine owns its lease with a deferred Release, and the parent's
// Wait holds none. Compliant.
func WorkerLease(st *store.Store) int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		lease := st.ReadLease()
		defer lease.Release()
		total += lease.CountIDs(0, 0, 0, store.AnyGraph)
	}()
	wg.Wait()
	return total
}
