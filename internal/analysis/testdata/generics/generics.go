// Package generictest exercises the analyzers on generic functions,
// methods and receivers: type-parameterized code must neither panic
// the suite nor change what counts as a violation. Loaded under
// "lodify/internal/resolver/generictest" so the ctxflow remote-endpoint
// scope applies; locksafe is path-independent.
package generictest

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Cache is a generic container guarding its map with a mutex.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// Get locks, reads, unlocks: fine on its own.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

// GetBoth re-enters the mutex through Get while holding it — the
// multi-type-parameter receiver (IndexListExpr) must still be matched.
func (c *Cache[K, V]) GetBoth(k1, k2 K) (V, V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, _ := c.Get(k1) // want "mutexes are not re-entrant"
	b, _ := c.Get(k2) // want "mutexes are not re-entrant"
	return a, b
}

// Counter has a single type parameter (IndexExpr receiver).
type Counter[T comparable] struct {
	mu sync.Mutex
	n  map[T]int
}

// Inc locks the counter.
func (c *Counter[T]) Inc(k T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == nil {
		c.n = map[T]int{}
	}
	c.n[k]++
}

// IncAll re-enters through Inc while holding the lock.
func (c *Counter[T]) IncAll(ks []T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range ks {
		c.Inc(k) // want "mutexes are not re-entrant"
	}
}

// SnapshotCache copies a generic value containing a mutex by value.
func SnapshotCache[K comparable, V any](c Cache[K, V]) int { // want "passes a value containing a sync mutex"
	return len(c.m)
}

// Fetch is an exported generic function performing a remote round trip
// without a context.
func Fetch[T any](urls []string, parse func(*http.Response) T) ([]T, error) {
	var out []T
	for _, u := range urls {
		resp, err := http.Get(u) // want "no context.Context parameter"
		if err != nil {
			return nil, err
		}
		out = append(out, parse(resp))
		resp.Body.Close()
	}
	return out, nil
}

// Retry is an exported generic helper simulating endpoint latency.
func Retry[T any](attempts int, f func() (T, error)) (T, error) {
	var zero T
	for i := 0; i < attempts; i++ {
		v, err := f()
		if err == nil {
			return v, nil
		}
		time.Sleep(time.Millisecond) // want "no context.Context parameter"
	}
	return zero, nil
}

// FetchCtx threads a context through the same generic round trip:
// compliant. The explicitly instantiated Retry[int] call exercises the
// IndexExpr call path in the callee resolution.
func FetchCtx[T any](ctx context.Context, url string, parse func(*http.Response) T) (T, error) {
	var zero T
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return zero, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return zero, err
	}
	defer resp.Body.Close()
	n, err := Retry[int](1, func() (int, error) { return resp.StatusCode, nil })
	if err != nil || n == 0 {
		return zero, err
	}
	return parse(resp), nil
}

// keyed is a generic value type without locks: copying it is fine and
// must not be flagged.
type keyed[K comparable] struct {
	k K
}

// CopyKeyed copies a lock-free generic value: compliant.
func CopyKeyed[K comparable](v keyed[K]) keyed[K] {
	w := v
	return w
}
