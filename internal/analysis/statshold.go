package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StatsHold enforces the PR 9 cardinality-statistics invariant: the
// per-shard `pstats` map, its counter records and its HLL sketches
// are only mutated while the owning shard's WRITE lock is held.
// Reads ride the shard's read lease machinery and merge into local
// sketches, so only mutations are checked; RLock is never enough.
//
// The owner shape is recognized structurally — a struct with a sync
// lock field and a `pstats` map field — so the fixture packages and
// internal/store are both covered without naming either. Payload
// types (the map's value record and every named type among its
// fields) are tracked through derivation: `ps := sh.pstats[k]` makes
// ps require the same lock as sh.pstats, including values bound by
// range statements.
//
// Helpers that document "caller holds sh.mu" — the (*shard).statAdd
// shape — are seen through via the MutatesStats summary bitset: an
// unexported function's unprotected stats mutations rooted at a
// parameter or receiver defer to its call sites, where the caller's
// held set (direct acquisitions plus lockShards-style helper
// acquisitions from the Locks summary, held sticky) decides. The
// shard-index dataflow reuses the localid mask machinery: a mutation
// reached through a shard selected by term-id routing is called out
// in the message.
var StatsHold = &Analyzer{
	Name: "statshold",
	Doc:  "flags pstats counters and HLL sketches mutated without the owning shard's write lock held",
	Run:  runStatsHold,
}

// statsTypes identifies one package's stats shapes.
type statsTypes struct {
	// ownerLock maps an owner named type (has a lock and a pstats map)
	// to its lock label ("shard.mu").
	ownerLock map[*types.Named]string
	// payload holds the named types of the stats records and sketches
	// reachable from a pstats map value.
	payload map[*types.Named]bool
}

func (stc *statsTypes) empty() bool {
	return len(stc.ownerLock) == 0
}

// newStatsTypes scans the package scope for owner structs and their
// payload types.
func newStatsTypes(pass *Pass) *statsTypes {
	stc := &statsTypes{ownerLock: map[*types.Named]string{}, payload: map[*types.Named]bool{}}
	if pass.Pkg == nil {
		return stc
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		str, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		lockField := ""
		var pstatsElem types.Type
		for i := 0; i < str.NumFields(); i++ {
			f := str.Field(i)
			if lockField == "" &&
				(isNamedType(f.Type(), "sync", "Mutex") || isNamedType(f.Type(), "sync", "RWMutex")) {
				lockField = f.Name()
			}
			if f.Name() == "pstats" {
				if m, ok := f.Type().Underlying().(*types.Map); ok {
					pstatsElem = m.Elem()
				}
			}
		}
		if lockField == "" || pstatsElem == nil {
			continue
		}
		stc.ownerLock[named] = named.Obj().Name() + "." + lockField
		stc.addPayload(pstatsElem)
	}
	return stc
}

func (stc *statsTypes) addPayload(t types.Type) {
	named := namedOrPtr(t)
	if named == nil || stc.payload[named] {
		return
	}
	stc.payload[named] = true
	if str, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < str.NumFields(); i++ {
			stc.addPayload(str.Field(i).Type())
		}
	}
}

func (stc *statsTypes) isPayload(t types.Type) bool {
	n := namedOrPtr(t)
	return n != nil && stc.payload[n]
}

func (stc *statsTypes) ownerOf(t types.Type) (string, bool) {
	n := namedOrPtr(t)
	if n == nil {
		return "", false
	}
	label, ok := stc.ownerLock[n]
	return label, ok
}

// pstatsPath reports whether e's selector path runs through an owner
// type's pstats field, returning the owner's lock label and whether
// the path crosses an index selected by a term-id (the routed-shard
// shape, st.shards[shardOf(id)].pstats).
func pstatsPath(pass *Pass, stc *statsTypes, e ast.Expr) (label string, routed, ok bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "pstats" {
				if fv, isVar := pass.Info.Uses[x.Sel].(*types.Var); isVar && fv.IsField() {
					if l, owned := stc.ownerOf(exprType(pass, x.X)); owned {
						label, ok = l, true
					}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if termIDRouted(pass, x.Index) {
				routed = true
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr, *ast.Ident:
			return label, routed && ok, ok
		default:
			return label, routed && ok, ok
		}
	}
}

// termIDRouted reports whether an index expression is (or derives
// from) a term id — the localid mask machinery's notion of an
// id-typed value — directly or through a routing call's arguments.
func termIDRouted(pass *Pass, idx ast.Expr) bool {
	if isTermIDExpr(pass, idx) {
		return true
	}
	if call, ok := ast.Unparen(idx).(*ast.CallExpr); ok {
		for _, a := range call.Args {
			if isTermIDExpr(pass, a) {
				return true
			}
		}
	}
	return false
}

// statsMutationBits computes the MutatesStats summary field: the
// parameter bits through which fd mutates stats state with no write
// lock held (the "caller holds the lock" helper shape).
func statsMutationBits(pass *Pass, stc *statsTypes, fd *ast.FuncDecl, ix *SummaryIndex, paramBit map[types.Object]uint32) uint32 {
	if fd.Body == nil || stc.empty() {
		return 0
	}
	var out uint32
	emit := func(label string, pos token.Pos, bit uint32, what string, routed bool) {
		out |= bit & summaryParamMask
	}
	scanStats(pass, ix, stc, fd, paramBit, emit)
	return out
}

// scanStats runs the stats scanner over fd's body and every
// go-launched literal in it, the latter on fresh held/derived state.
func scanStats(pass *Pass, ix *SummaryIndex, stc *statsTypes, fd *ast.FuncDecl, paramBit map[types.Object]uint32, emit func(label string, pos token.Pos, bit uint32, what string, routed bool)) {
	roots := []ast.Stmt{ast.Stmt(fd.Body)}
	for len(roots) > 0 {
		sc := &statsScanner{
			pass: pass, ix: ix, stc: stc, paramBit: paramBit,
			sticky: map[string]bool{}, derived: map[types.Object]statsOrigin{},
			emit: emit,
		}
		sc.stmt(roots[0])
		roots = roots[1:]
		for _, lit := range sc.goBodies {
			roots = append(roots, ast.Stmt(lit.Body))
		}
	}
}

// statsOrigin records where a derived value came from: the lock label
// that must be write-held to mutate it, and the parameter bit of the
// base it was reached from (0 = a local/global base).
type statsOrigin struct {
	label string
	bit   uint32
}

// statsScanner is a branch-blind walker tracking write-held locks and
// pstats-derived locals.
type statsScanner struct {
	pass     *Pass
	ix       *SummaryIndex
	stc      *statsTypes
	paramBit map[types.Object]uint32
	// wheld holds directly write-acquired labels (Lock/TryLock; RLock
	// does not count). sticky holds labels acquired inside callees —
	// the lockShards shape — held blind to scope end.
	wheld  []string
	sticky map[string]bool
	// derived maps a local object to the origin of its pstats-reached
	// value (ps := sh.pstats[k]).
	derived  map[types.Object]statsOrigin
	goBodies []*ast.FuncLit
	emit     func(label string, pos token.Pos, bit uint32, what string, routed bool)
}

func (sc *statsScanner) heldW(label string) bool {
	if sc.sticky[label] {
		return true
	}
	for _, h := range sc.wheld {
		if h == label {
			return true
		}
	}
	return false
}

func (sc *statsScanner) rootObj(e ast.Expr) types.Object {
	if id := rootIdent(e); id != nil {
		return sc.pass.Info.ObjectOf(id)
	}
	return nil
}

// classify resolves the lock label and origin bit an expression's
// mutation would require: a pstats path, a derived local, or a
// payload-typed parameter.
func (sc *statsScanner) classify(e ast.Expr) (label string, bit uint32, routed, ok bool) {
	if l, r, isPath := pstatsPath(sc.pass, sc.stc, e); isPath {
		var b uint32
		if obj := sc.rootObj(e); obj != nil {
			b = sc.paramBit[obj]
		}
		return l, b, r, true
	}
	if obj := sc.rootObj(e); obj != nil {
		if o, isDerived := sc.derived[obj]; isDerived {
			return o.label, o.bit, false, true
		}
		if b := sc.paramBit[obj]; b != 0 && sc.stc.isPayload(obj.Type()) {
			// A payload-typed parameter: the helper mutates a record its
			// caller reached from some shard's pstats.
			return "", b, false, true
		}
	}
	return "", 0, false, false
}

// mutate handles one mutation of target (an assignment LHS, IncDec
// operand, delete target, or call operand).
func (sc *statsScanner) mutate(target ast.Expr, pos token.Pos, what string) {
	label, bit, routed, ok := sc.classify(target)
	if !ok {
		return
	}
	if label != "" && sc.heldW(label) {
		return
	}
	if label == "" && bit != 0 {
		// A payload parameter with no known owner: the lock obligation
		// lives at the caller; only the summary bit travels.
		sc.emit("", pos, bit, what, routed)
		return
	}
	sc.emit(label, pos, bit, what, routed)
}

// hasSteps reports whether e mutates through at least one selector,
// index or dereference — a plain `v = ...` rebind of a derived local
// is not a stats mutation.
func hasSteps(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func (sc *statsScanner) bindDerived(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := sc.pass.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	if label, routed, ok := pstatsPath(sc.pass, sc.stc, rhs); ok {
		_ = routed
		var bit uint32
		if base := sc.rootObj(rhs); base != nil {
			bit = sc.paramBit[base]
		}
		sc.derived[obj] = statsOrigin{label: label, bit: bit}
		return
	}
	if base := sc.rootObj(rhs); base != nil {
		if o, isDerived := sc.derived[base]; isDerived {
			sc.derived[obj] = o
			return
		}
	}
	delete(sc.derived, obj)
}

func (sc *statsScanner) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			sc.stmt(st)
		}
	case *ast.ExprStmt:
		sc.expr(s.X, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			sc.expr(e, false)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				sc.bindDerived(s.Lhs[i], s.Rhs[i])
			}
		} else if len(s.Rhs) == 1 {
			// v, ok := sh.pstats[k]
			for _, l := range s.Lhs {
				sc.bindDerived(l, s.Rhs[0])
			}
		}
		for _, e := range s.Lhs {
			if hasSteps(e) {
				sc.mutate(e, e.Pos(), "assignment")
			}
			sc.expr(e, false)
		}
	case *ast.IncDecStmt:
		if hasSteps(s.X) {
			sc.mutate(s.X, s.X.Pos(), "increment")
		}
		sc.expr(s.X, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.expr(v, false)
					}
				}
			}
		}
	case *ast.IfStmt:
		sc.stmt(s.Init)
		sc.expr(s.Cond, false)
		sc.stmt(s.Body)
		sc.stmt(s.Else)
	case *ast.ForStmt:
		sc.stmt(s.Init)
		sc.expr(s.Cond, false)
		sc.stmt(s.Body)
		sc.stmt(s.Post)
	case *ast.RangeStmt:
		sc.expr(s.X, false)
		// for k, ps := range sh.pstats derives the value variable.
		if s.Value != nil {
			sc.bindDerived(s.Value, indexOf(s.X))
		}
		sc.stmt(s.Body)
	case *ast.SwitchStmt:
		sc.stmt(s.Init)
		sc.expr(s.Tag, false)
		sc.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		sc.stmt(s.Init)
		sc.stmt(s.Assign)
		sc.stmt(s.Body)
	case *ast.SelectStmt:
		sc.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			sc.expr(e, false)
		}
		for _, st := range s.Body {
			sc.stmt(st)
		}
	case *ast.CommClause:
		sc.stmt(s.Comm)
		for _, st := range s.Body {
			sc.stmt(st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			sc.expr(e, false)
		}
	case *ast.SendStmt:
		sc.expr(s.Chan, false)
		sc.expr(s.Value, false)
	case *ast.DeferStmt:
		sc.expr(s.Call, true)
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			sc.goBodies = append(sc.goBodies, lit)
		}
		for _, a := range s.Call.Args {
			sc.expr(a, false)
		}
	case *ast.LabeledStmt:
		sc.stmt(s.Stmt)
	}
}

// indexOf synthesizes the derivation source for a range value: the
// ranged expression itself carries the pstats path.
func indexOf(x ast.Expr) ast.Expr { return x }

func (sc *statsScanner) expr(e ast.Expr, deferred bool) {
	switch e := ast.Unparen(e).(type) {
	case nil:
	case *ast.CallExpr:
		// delete(sh.pstats, k) is a builtin: no callee summary exists.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "delete" {
			if _, isBuiltin := sc.pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				sc.mutate(e.Args[0], e.Pos(), "delete")
				for _, a := range e.Args {
					sc.expr(a, false)
				}
				return
			}
		}
		for _, a := range e.Args {
			sc.expr(a, false)
		}
		if label, op := mutexOpOn(sc.pass, e); label != "" {
			switch op {
			case "Lock", "TryLock":
				sc.wheld = append(sc.wheld, label)
			case "Unlock":
				if !deferred {
					for i := len(sc.wheld) - 1; i >= 0; i-- {
						if sc.wheld[i] == label {
							sc.wheld = append(sc.wheld[:i], sc.wheld[i+1:]...)
							break
						}
					}
				}
			}
			return
		}
		if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			sc.stmt(lit.Body)
			return
		}
		sc.expr(e.Fun, false)
		fn := calleeFunc(sc.pass.Info, e)
		if fn == nil {
			return
		}
		s := sc.ix.Summary(fn)
		if s == nil {
			return
		}
		// Locks acquired inside a callee — the lockShards shape — stay
		// held blind to scope end.
		for _, l := range s.Locks {
			sc.sticky[l] = true
		}
		if s.MutatesStats == 0 {
			return
		}
		var recvExpr ast.Expr
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if sg, _ := fn.Type().(*types.Signature); sg != nil && sg.Recv() != nil {
				recvExpr = sel.X
			}
		}
		mapEachAliasedOperand(s.MutatesStats, fn, e.Args, func(i int) {
			operand := recvExpr
			if i >= 0 {
				operand = e.Args[i]
			}
			if operand == nil {
				return
			}
			sc.mutateOperand(operand, e.Pos(), fn.Name())
		})
	case *ast.FuncLit:
		sc.stmt(e.Body)
	case *ast.UnaryExpr:
		sc.expr(e.X, false)
	case *ast.BinaryExpr:
		sc.expr(e.X, false)
		sc.expr(e.Y, false)
	case *ast.StarExpr:
		sc.expr(e.X, false)
	case *ast.SelectorExpr:
		sc.expr(e.X, false)
	case *ast.IndexExpr:
		sc.expr(e.X, false)
		sc.expr(e.Index, false)
	case *ast.IndexListExpr:
		sc.expr(e.X, false)
	case *ast.SliceExpr:
		sc.expr(e.X, false)
	case *ast.TypeAssertExpr:
		sc.expr(e.X, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			sc.expr(el, false)
		}
	case *ast.KeyValueExpr:
		sc.expr(e.Value, false)
	}
}

// mutateOperand judges a call operand a summarized callee mutates
// through: pstats paths and derived locals as usual, plus the owner
// itself (sh.statAdd(...) — the callee reaches sh.pstats from the
// receiver).
func (sc *statsScanner) mutateOperand(operand ast.Expr, pos token.Pos, callee string) {
	if label, bit, routed, ok := sc.classify(ast.Unparen(unAddr(operand))); ok {
		if label != "" && sc.heldW(label) {
			return
		}
		sc.emit(label, pos, bit, "call to "+callee, routed)
		return
	}
	if label, ok := sc.stc.ownerOf(exprType(sc.pass, operand)); ok {
		if sc.heldW(label) {
			return
		}
		var bit uint32
		if obj := sc.rootObj(operand); obj != nil {
			bit = sc.paramBit[obj]
		}
		routed := false
		if idx, isIdx := ast.Unparen(operand).(*ast.IndexExpr); isIdx {
			routed = termIDRouted(sc.pass, idx.Index)
		}
		sc.emit(label, pos, bit, "call to "+callee, routed)
	}
}

// unAddr unwraps a leading &.
func unAddr(e ast.Expr) ast.Expr {
	if un, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && un.Op == token.AND {
		return un.X
	}
	return e
}

// ---- the analyzer ----

func runStatsHold(pass *Pass) {
	stc := newStatsTypes(pass)
	if stc.empty() {
		return
	}
	pkg := &Package{Path: pass.Path, Fset: pass.Fset, Files: pass.Files,
		Types: pass.Pkg, Info: pass.Info}
	for _, fd := range funcDecls(pkg) {
		if fd.Body == nil {
			continue
		}
		params := declParamBits(pass, fd)
		exported := fd.Name.IsExported()
		fn := fd.Name.Name
		emit := func(label string, pos token.Pos, bit uint32, what string, routed bool) {
			if bit != 0 && !exported {
				// Deferred through MutatesStats: judged at the call
				// sites, where the caller's held set is known.
				return
			}
			garnish := ""
			if routed {
				garnish = " (shard selected by term-id routing)"
			}
			if label == "" {
				pass.Reportf(pos,
					"%s in %s mutates per-shard stats through a caller-provided record%s with no write lock held; acquire the owning shard's write lock first — RLock is not enough for stats mutation",
					what, fn, garnish)
				return
			}
			pass.Reportf(pos,
				"%s in %s mutates pstats state%s without %s write-held; acquire the owning shard's write lock first — RLock is not enough for stats mutation",
				what, fn, garnish, label)
		}
		scanStats(pass, pass.Index, stc, fd, params, emit)
	}
}
