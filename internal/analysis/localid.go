package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// LocalID enforces the id-space separation contract (DESIGN.md §8):
// the SPARQL executor mints query-local ids for values that are not in
// the store dictionary (UNION branch literals, BIND results, VALUES
// rows) by setting the high bit — localIDBit — on a local-dictionary
// index. Those ids are only meaningful to the query's localDict; fed
// to a store ID lookup (MatchIDs, CountIDs, TermOf) they alias an
// unrelated term, silently corrupting results.
//
// The analyzer taints values produced by a local-id mint — `x | C`
// where C is a store.TermID constant with the high bit set, or an
// idOf-style local-dictionary method — and reports when a tainted id
// reaches a store.Store or store.Lease id-space parameter. Masking the
// high bit off (`id &^ localIDBit`) materializes the id back into
// local-dictionary index space and drops the taint.
var LocalID = &Analyzer{
	Name: "localid",
	Doc:  "flags query-local (high-bit) ids flowing into store ID lookups",
	Run:  runLocalID,
}

// tLocal marks ids carrying the localIDBit flag.
const tLocal taint = 1

// idSinkMethods are the store.Store / store.Lease methods whose
// parameters are dictionary ids. ShardOf routes a (graph, subject) id
// pair to a shard index: a local id fed to it picks an arbitrary shard
// that never holds the quad, so it is an id-space sink like the scans.
var idSinkMethods = map[string]bool{
	"MatchIDs": true, "CountIDs": true, "TermOf": true, "ShardOf": true,
}

func runLocalID(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLocalIDs(pass, fd)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkLocalIDs(pass, lit)
			}
			return true
		})
	}
}

func checkLocalIDs(pass *Pass, fn ast.Node) {
	hooks := &flowHooks{
		binaryResult: func(f *funcFlow, e *ast.BinaryExpr, x, y taint) taint {
			switch e.Op {
			case token.OR:
				// id | localIDBit mints a local id.
				if isHighBitIDConst(pass, e.X) || isHighBitIDConst(pass, e.Y) {
					return (x | y) | tLocal
				}
			case token.AND_NOT:
				// id &^ localIDBit strips the flag: the result is a plain
				// local-dictionary index again.
				if isHighBitIDConst(pass, e.Y) {
					return (x | y) &^ tLocal
				}
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
				token.LAND, token.LOR:
				// Comparisons produce bools, which carry no id.
				return 0
			}
			return x | y
		},
		callResult: func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint) taint {
			callee := calleeFunc(pass.Info, call)
			if callee != nil && callee.Name() == "idOf" && resultIsTermID(callee) {
				// localDict.idOf-style minting constructors.
				return tLocal
			}
			if s := pass.Index.Summary(callee); s != nil {
				// A helper that mints a local id is a source; one that
				// only threads masked/clean values through is not, even if
				// a local id went in (the summary's alias bits vanish at
				// the `&^ localIDBit` mask inside the helper).
				if s.MintsLocal {
					return tLocal
				}
				if tv, ok := pass.Info.Types[call]; ok && !typeHoldsTermID(tv.Type) {
					return 0
				}
				var t taint
				mapEachAliasedOperand(s.ResultAlias, callee, call.Args, func(i int) {
					if i < 0 {
						t |= recv
					} else if i < len(args) {
						t |= args[i]
					}
				})
				return t & tLocal
			}
			// Anything else: a call result holds a local id only if its
			// type can, and an operand carried one in.
			if (recv|orTaints(args))&tLocal == 0 {
				return 0
			}
			if tv, ok := pass.Info.Types[call]; ok && !typeHoldsTermID(tv.Type) {
				return 0
			}
			return tLocal
		},
		maskBind: func(f *funcFlow, obj types.Object, t taint) taint {
			if t&tLocal != 0 && obj != nil && !typeHoldsTermID(obj.Type()) {
				return t &^ tLocal
			}
			return t
		},
		onCondFalse: func(f *funcFlow, cond ast.Expr) {
			// `id & localIDBit != 0` refuted: id is a plain store id on
			// this path (the localDict.termOf dispatch idiom).
			if e := highBitTestedOperand(pass, cond); e != nil {
				if root := rootIdent(e); root != nil {
					if obj := pass.Info.ObjectOf(root); obj != nil {
						f.set(obj, f.get(obj)&^tLocal)
					}
				}
			}
		},
		onCall: func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint, deferred bool) {
			callee := calleeFunc(pass.Info, call)
			if callee == nil {
				return
			}
			if idSinkMethods[callee.Name()] &&
				(isMethodOn(callee, storePkgPath, "Store") || isMethodOn(callee, storePkgPath, "Lease")) {
				for i, a := range call.Args {
					if i < len(args) && args[i]&tLocal != 0 && isTermIDExpr(pass, a) {
						f.Reportf(a.Pos(),
							"query-local id (localIDBit set) passed to store %s: local ids index the query's localDict, not the store dictionary — mask with &^ localIDBit and resolve via the local dict instead",
							callee.Name())
					}
				}
				return
			}
			// A helper that forwards its parameter into a store id-space
			// lookup is a sink one hop removed.
			if s := pass.Index.Summary(callee); s != nil && s.SinksID != 0 {
				for i, a := range call.Args {
					if i < len(args) && args[i]&tLocal != 0 && isTermIDExpr(pass, a) &&
						calleeParamBitSet(s.SinksID, callee, i) {
						f.Reportf(a.Pos(),
							"query-local id (localIDBit set) reaches a store ID lookup via call to %s: local ids index the query's localDict, not the store dictionary — mask with &^ localIDBit and resolve via the local dict instead",
							callee.Name())
					}
				}
			}
		},
	}
	runFlow(pass, fn, hooks, nil)
}

// highBitTestedOperand recognizes the flag-dispatch guard
// `x & localIDBit != 0` (either operand order, compared against 0)
// and returns the tested expression x, or nil. On the path where the
// guard is false, x provably has no local bit.
func highBitTestedOperand(pass *Pass, cond ast.Expr) ast.Expr {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ {
		return nil
	}
	andSide := b.X
	switch {
	case isZeroConst(pass, b.Y):
	case isZeroConst(pass, b.X):
		andSide = b.Y
	default:
		return nil
	}
	ab, ok := ast.Unparen(andSide).(*ast.BinaryExpr)
	if !ok || ab.Op != token.AND {
		return nil
	}
	if isHighBitIDConst(pass, ab.Y) {
		return ab.X
	}
	if isHighBitIDConst(pass, ab.X) {
		return ab.Y
	}
	return nil
}

func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}

// isHighBitIDConst reports whether e is a constant store.TermID with
// the top bit set — the localIDBit flag, wherever it is declared.
func isHighBitIDConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || !isNamedType(tv.Type, storePkgPath, "TermID") {
		return false
	}
	v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
	return ok && v&(1<<63) != 0
}

// resultIsTermID reports whether fn's (single) result is store.TermID.
func resultIsTermID(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return isNamedType(sig.Results().At(0).Type(), storePkgPath, "TermID")
}

// isTermIDExpr reports whether e has type store.TermID.
func isTermIDExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && isNamedType(tv.Type, storePkgPath, "TermID")
}

// typeHoldsTermID reports whether t can carry a store.TermID value
// (directly or through one container level — the shapes the executor
// actually uses: ids, id slices/arrays, rows).
func typeHoldsTermID(t types.Type) bool {
	if t == nil {
		return false
	}
	if isNamedType(t, storePkgPath, "TermID") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return typeHoldsTermIDShallow(u.Elem())
	case *types.Array:
		return typeHoldsTermIDShallow(u.Elem())
	case *types.Map:
		return typeHoldsTermIDShallow(u.Key()) || typeHoldsTermIDShallow(u.Elem())
	case *types.Pointer:
		return typeHoldsTermID(u.Elem())
	case *types.Chan:
		return typeHoldsTermIDShallow(u.Elem())
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if typeHoldsTermID(u.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

func typeHoldsTermIDShallow(t types.Type) bool {
	if isNamedType(t, storePkgPath, "TermID") {
		return true
	}
	if s, ok := t.Underlying().(*types.Slice); ok { // rows: [][]TermID
		return isNamedType(s.Elem(), storePkgPath, "TermID")
	}
	return false
}

func orTaints(ts []taint) taint {
	var t taint
	for _, x := range ts {
		t |= x
	}
	return t
}
