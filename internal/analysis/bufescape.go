package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufEscape enforces the chunk-buffer aliasing contract of
// rdf.ParseNQuadsChunked (DESIGN.md §10): the quads a chunk callback
// receives — and every rdf.Term sliced out of them — alias the chunk's
// backing buffer, which is recycled the moment the emit callback
// returns. A batch value that outlives the callback (stored to a field
// or captured variable, appended to a captured slice, sent on a
// channel, handed to a goroutine, or returned) must go through
// Quad.Clone/Term.Clone first; anything else is a use-after-recycle
// that surfaces as silently corrupted terms under load.
//
// The analyzer runs the dataflow engine over every function literal
// passed to ParseNQuadsChunked, seeding the batch parameter as tainted.
// Clone() is the sanitizer; values whose type cannot hold an rdf.Term
// (ints, strings, errors) drop the taint at binding time.
var BufEscape = &Analyzer{
	Name: "bufescape",
	Doc:  "flags chunk-batch quads/terms escaping a ParseNQuadsChunked callback without Clone",
	Run:  runBufEscape,
}

// tBuf marks values aliasing the chunk parse buffer.
const tBuf taint = 1

func runBufEscape(pass *Pass) {
	tc := newTermTypes(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !calleeIsPkgFunc(pass.Info, call, rdfPkgPath, "ParseNQuadsChunked") {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				tc.checkCallback(pass, lit)
			}
			return true
		})
	}
}

// termTypes memoizes "can this type hold an rdf.Term?" so the taint
// stays on quad/term-shaped values only.
type termTypes struct {
	pass *Pass
	memo map[types.Type]bool
}

func newTermTypes(pass *Pass) *termTypes {
	return &termTypes{pass: pass, memo: map[types.Type]bool{}}
}

// holdsTerm reports whether a value of type t can contain an rdf.Term
// or rdf.Quad (directly or through struct/slice/array/map/pointer
// nesting) and hence alias the parse buffer.
func (tc *termTypes) holdsTerm(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := tc.memo[t]; ok {
		return v
	}
	tc.memo[t] = false // cycle guard
	v := false
	switch {
	case isNamedType(t, rdfPkgPath, "Term"), isNamedType(t, rdfPkgPath, "Quad"),
		isNamedType(t, rdfPkgPath, "Triple"):
		v = true
	default:
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields() && !v; i++ {
				v = tc.holdsTerm(u.Field(i).Type())
			}
		case *types.Slice:
			v = tc.holdsTerm(u.Elem())
		case *types.Array:
			v = tc.holdsTerm(u.Elem())
		case *types.Pointer:
			v = tc.holdsTerm(u.Elem())
		case *types.Map:
			v = tc.holdsTerm(u.Key()) || tc.holdsTerm(u.Elem())
		case *types.Chan:
			v = tc.holdsTerm(u.Elem())
		case *types.Signature:
			// A closure can capture terms; handled via capture taint,
			// so the func value itself carries taint dynamically.
			v = true
		}
	}
	tc.memo[t] = v
	return v
}

// checkCallback runs the escape analysis over one emit callback.
func (tc *termTypes) checkCallback(pass *Pass, lit *ast.FuncLit) {
	seed := map[types.Object]taint{}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.Info.ObjectOf(name)
				if obj != nil && tc.holdsTerm(obj.Type()) {
					seed[obj] = tBuf
				}
			}
		}
	}
	if len(seed) == 0 {
		return
	}
	hooks := &flowHooks{
		callResult: func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint) taint {
			if recv&tBuf == 0 {
				merged := recv
				for _, a := range args {
					merged |= a
				}
				if merged&tBuf == 0 {
					return 0
				}
			}
			fn := calleeFunc(pass.Info, call)
			// Clone materializes: the result owns its memory.
			if isRdfClone(fn) {
				return 0
			}
			// The result aliases the buffer only if its type can hold a
			// term (q.Triple() does, q.S.Compare(x) does not).
			if tv, ok := pass.Info.Types[call]; ok && !tc.holdsTermTuple(tv.Type) {
				return 0
			}
			// With a summary, only the operands the callee actually
			// threads into its results carry the taint through — a helper
			// that Clones internally returns an untainted value even
			// though a tainted quad went in.
			if s := pass.Index.Summary(fn); s != nil {
				var t taint
				mapEachAliasedOperand(s.ResultAlias, fn, call.Args, func(i int) {
					if i < 0 {
						t |= recv
					} else if i < len(args) {
						t |= args[i]
					}
				})
				return t & tBuf
			}
			var t taint
			t = recv
			for _, a := range args {
				t |= a
			}
			return t & tBuf
		},
		onCall: func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint, deferred bool) {
			// A tainted batch value stored beyond the callback inside a
			// callee escapes just as surely as a direct store here.
			fn := calleeFunc(pass.Info, call)
			s := pass.Index.Summary(fn)
			if s == nil || s.EscapesTerm == 0 {
				return
			}
			report := func(pos token.Pos) {
				f.Reportf(pos,
					"chunk-batch value escapes via call to %s, which stores it beyond the callback: batch terms alias the parse buffer, which is recycled when emit returns (call .Clone() first)",
					fn.Name())
			}
			if s.EscapesTerm&summaryRecvBit != 0 && recv&tBuf != 0 {
				report(call.Pos())
			}
			for i, a := range call.Args {
				if i < len(args) && args[i]&tBuf != 0 && calleeParamBitSet(s.EscapesTerm, fn, i) {
					report(a.Pos())
				}
			}
		},
		maskBind: func(f *funcFlow, obj types.Object, t taint) taint {
			if t&tBuf != 0 && !tc.holdsTerm(obj.Type()) {
				return t &^ tBuf
			}
			return t
		},
		onEscape: func(f *funcFlow, kind escapeKind, e ast.Expr, pos token.Pos, t taint) {
			if t&tBuf == 0 {
				return
			}
			f.Reportf(pos,
				"chunk-batch value %s without Clone: batch terms alias the parse buffer, which is recycled when emit returns (call .Clone() first)",
				kind)
		},
	}
	runFlow(pass, lit, hooks, seed)
}

// holdsTermTuple extends holdsTerm over call-result tuples.
func (tc *termTypes) holdsTermTuple(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if tc.holdsTerm(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return tc.holdsTerm(t)
}
