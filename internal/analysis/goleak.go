package analysis

import (
	"go/ast"
)

// GoLeak flags goroutines spawned with no way to await or cancel
// them. The concurrent fan-outs in sparql/resolver/rdf all follow the
// supervised pattern — WaitGroup accounting, a done/jobs channel, or
// a context — and a spawn without any of those is either a leak
// (blocked forever on an abandoned channel) or an unsupervised
// lifetime bug that the sharded store's per-shard workers would
// multiply.
//
// Evidence that a goroutine is bounded, checked on the spawned body
// (literals) or the spawned function (transitively, via its summary):
//
//   - any channel operation (send, receive, range, select);
//   - sync.WaitGroup Done/Wait;
//   - context use;
//   - a lifecycle handle in the callee's signature (context.Context,
//     a channel, *sync.WaitGroup) — the spawner holds the other end.
//
// Calls through function values are unresolvable and deliberately not
// flagged (conservative toward false negatives, like the rest of the
// suite).
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "flags goroutines spawned without a ctx/done-channel/WaitGroup completion path",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineBounded(pass, gs.Call) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine spawned without a completion path: no channel, WaitGroup, or context ties it back to the spawner, so it can neither be awaited nor cancelled")
			return true
		})
	}
}

// goroutineBounded reports whether the spawned call shows completion
// evidence.
func goroutineBounded(pass *Pass, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return boundedEvidence(pass, lit.Body, pass.Index)
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		// go f() through a func value or method value: unresolvable,
		// assume supervised.
		return true
	}
	if sigHasLifecycleParam(fn) {
		return true
	}
	if s := pass.Index.Summary(fn); s != nil {
		return s.Bounded
	}
	// No summary available: check a same-package declaration directly
	// (the -interproc=off path), otherwise stay conservative.
	if fn.Pkg() != nil && pass.Pkg != nil && fn.Pkg().Path() == pass.Pkg.Path() {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if pass.Info.Defs[fd.Name] == fn {
					return boundedEvidence(pass, fd.Body, pass.Index)
				}
			}
		}
	}
	return true
}
