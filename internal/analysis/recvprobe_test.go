package analysis

import "testing"

func TestRecvProbe(t *testing.T) {
	runFixtureTest(t, []*Analyzer{BufEscape}, "recvfix", "lodify/internal/store/recvfix")
}
