package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// rdfPkgPath is the only package allowed to assemble IRI strings.
const rdfPkgPath = "lodify/internal/rdf"

// RawIRI flags IRI construction by raw string assembly: a `+`
// concatenation whose leftmost operand is a scheme-prefixed string
// constant, or an fmt.Sprintf whose (possibly %s-led) format resolves
// to a scheme prefix. Inside internal/rdf the rule is off — that is
// where the sanctioned minting constructors live — and an assembly
// expression passed directly as an argument to an internal/rdf call
// (rdf.NewIRI, rdf.MintIRI, rdf.NewLiteral, ...) is compliant by
// definition.
var RawIRI = &Analyzer{
	Name: "rawiri",
	Doc:  "flags IRI/URI construction via string concatenation or fmt.Sprintf outside internal/rdf",
	Run:  runRawIRI,
}

func runRawIRI(pass *Pass) {
	if pass.Path == rdfPkgPath || strings.HasPrefix(pass.Path, rdfPkgPath+"/") {
		return
	}
	for _, file := range pass.Files {
		// Direct arguments of internal/rdf calls are sanctioned: the
		// minting constructor they feed validates the result.
		sanctioned := map[ast.Expr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && calleePkgPath(pass.Info, call) == rdfPkgPath {
				for _, arg := range call.Args {
					sanctioned[ast.Unparen(arg)] = true
				}
			}
			return true
		})

		// Interior nodes of a reported concat chain must not be
		// re-reported.
		inner := map[ast.Expr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.ADD {
					return true
				}
				// The left sub-chain shares this chain's leftmost
				// operand; whatever happens here (report, sanction,
				// suppression), it must not be re-reported.
				if x, ok := ast.Unparen(e.X).(*ast.BinaryExpr); ok && x.Op == token.ADD {
					inner[x] = true
				}
				if sanctioned[e] || inner[e] {
					return true
				}
				if s, ok := constStringOf(pass, leftmostOperand(e)); ok && hasIRIScheme(s) {
					pass.Reportf(e.Pos(),
						"IRI assembled by string concatenation (%q + ...); mint IRIs through internal/rdf (rdf.MintIRI / rdf.NewIRI)", schemeOf(s))
				}
			case *ast.CallExpr:
				if sanctioned[e] || !calleeIsPkgFunc(pass.Info, e, "fmt", "Sprintf") || len(e.Args) == 0 {
					return true
				}
				format, ok := constStringOf(pass, e.Args[0])
				if !ok {
					return true
				}
				switch {
				case hasIRIScheme(format):
					pass.Reportf(e.Pos(),
						"IRI assembled with fmt.Sprintf(%q, ...); mint IRIs through internal/rdf (rdf.MintIRIf)", schemeOf(format))
				case strings.HasPrefix(format, "%s") || strings.HasPrefix(format, "%v"):
					if len(e.Args) > 1 {
						if s, ok := constStringOf(pass, e.Args[1]); ok && hasIRIScheme(s) {
							pass.Reportf(e.Pos(),
								"IRI assembled with fmt.Sprintf over base %q; mint IRIs through internal/rdf (rdf.MintIRIf)", schemeOf(s))
						}
					}
				}
			}
			return true
		})
	}
}

// leftmostOperand descends the left spine of a `+` chain.
func leftmostOperand(e *ast.BinaryExpr) ast.Expr {
	expr := ast.Expr(e)
	for {
		b, ok := ast.Unparen(expr).(*ast.BinaryExpr)
		if !ok || b.Op != token.ADD {
			return ast.Unparen(expr)
		}
		expr = b.X
	}
}

// constStringOf resolves expr to a compile-time string constant
// (literal or named constant) via the type checker.
func constStringOf(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// hasIRIScheme reports whether s starts with a hierarchical IRI
// scheme ("scheme://") or a urn: prefix.
func hasIRIScheme(s string) bool {
	if strings.HasPrefix(s, "urn:") {
		return true
	}
	i := strings.Index(s, "://")
	if i <= 0 {
		return false
	}
	for j := 0; j < i; j++ {
		c := s[j]
		switch {
		case 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z':
		case j > 0 && ('0' <= c && c <= '9' || c == '+' || c == '-' || c == '.'):
		default:
			return false
		}
	}
	return true
}

func schemeOf(s string) string {
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}
