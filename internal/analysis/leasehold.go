package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// storePkgPath hosts the quad store whose locking contracts leasehold
// and localid enforce.
const storePkgPath = "lodify/internal/store"

// LeaseHold enforces the store.ReadLease contract (DESIGN.md §9): a
// read lease holds every shard's RWMutex read lock from ReadLease
// until Release (the cross-shard epoch snapshot), so
//
//  1. every path out of the acquiring function — returns, panics, the
//     fall-off end — must Release first (defer lease.Release() covers
//     all of them), and
//  2. the lease must not be held across a blocking call: a network
//     round trip, a channel operation, a sync.WaitGroup/Cond wait,
//     another lock acquisition, or any Store method that takes shard
//     locks itself (with a writer queued between the two acquisitions,
//     the second read lock deadlocks).
//
// The analyzer runs the dataflow engine over every function and
// function literal, tracking lease variables as typestate (held /
// covered-by-defer). A lease that escapes the function (returned,
// stored to a field, sent away) transfers ownership and stops being
// tracked.
var LeaseHold = &Analyzer{
	Name: "leasehold",
	Doc:  "flags store read leases leaked on an exit path or held across a blocking call",
	Run:  runLeaseHold,
}

const (
	// tHeld marks a lease whose read lock is currently held.
	tHeld taint = 1
	// tCovered marks a lease with a deferred Release registered.
	tCovered taint = 2
)

func runLeaseHold(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLeases(pass, fd)
		}
		// Function literals are separate scopes: a goroutine body or
		// callback acquiring its own lease is checked against its own
		// exits, not its parent's.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkLeases(pass, lit)
			}
			return true
		})
	}
}

// checkLeases analyzes one function scope.
func checkLeases(pass *Pass, fn ast.Node) {
	// acquire records where each tracked lease was minted and at what
	// literal nesting depth, so blocking calls only count against
	// leases alive in the current synchronous scope.
	type site struct {
		pos   token.Pos
		depth int
	}
	acquire := map[types.Object]site{}

	// methodValue maps a variable bound to lease.Release (a method
	// value) back to its lease, so `rel := lease.Release; defer rel()`
	// counts as a deferred Release of that lease.
	methodValue := map[types.Object]types.Object{}

	// Every function literal is also analyzed as its own root (see
	// runLeaseHold), so reporting here is confined to leases acquired at
	// the root scope of THIS analysis (depth 0): issues inside nested
	// literals belong to the literal's own pass, which keeps each
	// finding single-owner and duplicate-free.
	holdsAt := func(f *funcFlow) (types.Object, bool) {
		if f.depth != 0 {
			return nil, false
		}
		var found types.Object
		f.each(func(obj types.Object, t taint) {
			if t&tHeld != 0 {
				if s, ok := acquire[obj]; ok && s.depth == 0 {
					found = obj
				}
			}
		})
		return found, found != nil
	}

	// transition applies a Release (direct, deferred, or inside a
	// helper) to the lease object's typestate.
	transition := func(f *funcFlow, obj types.Object, deferred bool) {
		if obj == nil {
			return
		}
		if deferred {
			f.set(obj, f.get(obj)|tCovered)
		} else {
			f.set(obj, f.get(obj)&^tHeld)
		}
	}
	rootObj := func(e ast.Expr) types.Object {
		if root := rootIdent(e); root != nil {
			return pass.Info.ObjectOf(root)
		}
		return nil
	}

	hooks := &flowHooks{
		callResult: func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint) taint {
			fn := calleeFunc(pass.Info, call)
			if fn != nil && fn.Name() == "ReadLease" && isMethodOn(fn, storePkgPath, "Store") {
				return tHeld
			}
			// A helper that wraps ReadLease hands out a held lease too.
			if s := pass.Index.Summary(fn); s != nil && s.ResultLease {
				return tHeld
			}
			return 0
		},
		onBind: func(f *funcFlow, obj types.Object, rhs ast.Expr, t taint) {
			// Binding lease.Release as a method value: the new variable
			// is a release handle, not a second lease.
			if mv := methodValueFunc(pass, rhs); mv != nil &&
				mv.Name() == "Release" && isMethodOn(mv, storePkgPath, "Lease") {
				if sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok {
					if lobj := rootObj(sel.X); lobj != nil {
						methodValue[obj] = lobj
					}
				}
				f.set(obj, 0)
				return
			}
			if t&tHeld != 0 {
				if _, ok := acquire[obj]; !ok {
					pos := obj.Pos()
					if rhs != nil {
						pos = rhs.Pos()
					}
					acquire[obj] = site{pos: pos, depth: f.depth}
				}
			}
		},
		onCall: func(f *funcFlow, call *ast.CallExpr, recv taint, args []taint, deferred bool) {
			callee := calleeFunc(pass.Info, call)
			// Release transitions the typestate.
			if callee != nil && callee.Name() == "Release" && isMethodOn(callee, storePkgPath, "Lease") {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					transition(f, rootObj(sel.X), deferred)
				}
				return
			}
			// Calling a bound method value: rel() releases its lease.
			if callee == nil {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if lobj, ok := methodValue[pass.Info.ObjectOf(id)]; ok {
						transition(f, lobj, deferred)
						return
					}
				}
			}
			s := pass.Index.Summary(callee)
			if s != nil {
				var recvObj types.Object
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					recvObj = rootObj(sel.X)
				}
				// The helper releases some of its lease operands.
				if s.Releases != 0 && f.asyncDepth == 0 {
					if s.Releases&summaryRecvBit != 0 {
						transition(f, recvObj, deferred)
					}
					for i, a := range call.Args {
						if calleeParamBitSet(s.Releases, callee, i) {
							transition(f, rootObj(a), deferred)
						}
					}
				}
				// A method value passed into an invoked func parameter:
				// runThen(lease.Release) releases lease.
				if s.CallsParams != 0 && f.asyncDepth == 0 {
					for i, a := range call.Args {
						if !calleeParamBitSet(s.CallsParams, callee, i) {
							continue
						}
						if mv := methodValueFunc(pass, a); mv != nil &&
							mv.Name() == "Release" && isMethodOn(mv, storePkgPath, "Lease") {
							if sel, ok := ast.Unparen(a).(*ast.SelectorExpr); ok {
								transition(f, rootObj(sel.X), deferred)
							}
						} else if id, ok := ast.Unparen(a).(*ast.Ident); ok {
							if lobj, ok := methodValue[pass.Info.ObjectOf(id)]; ok {
								transition(f, lobj, deferred)
							}
						}
					}
				}
				// The helper stores the lease away: ownership transfers.
				if s.EscapesLease != 0 {
					untrack := func(obj types.Object) {
						if obj != nil && f.get(obj)&tHeld != 0 {
							f.set(obj, 0)
							delete(acquire, obj)
						}
					}
					if s.EscapesLease&summaryRecvBit != 0 {
						untrack(recvObj)
					}
					for i, a := range call.Args {
						if calleeParamBitSet(s.EscapesLease, callee, i) {
							untrack(rootObj(a))
						}
					}
				}
			}
			if f.asyncDepth > 0 {
				return // goroutine bodies block their own goroutine only
			}
			kind := blockingCallKind(pass, call, callee)
			if kind == "" && s != nil && s.Blocking != "" {
				kind = "a call to " + callee.Name() + ", which blocks on " + s.Blocking
			}
			if kind != "" {
				if obj, ok := holdsAt(f); ok {
					f.Reportf(call.Pos(),
						"store read lease %s is held across %s; release it first or keep blocking work outside the lease",
						objName(obj), kind)
				}
			}
		},
		onChanOp: func(f *funcFlow, pos token.Pos) {
			if f.asyncDepth > 0 {
				return
			}
			if obj, ok := holdsAt(f); ok {
				f.Reportf(pos,
					"store read lease %s is held across a channel operation; release it first or keep blocking work outside the lease",
					objName(obj))
			}
		},
		onEscape: func(f *funcFlow, kind escapeKind, e ast.Expr, pos token.Pos, t taint) {
			// A lease handed out of the function transfers ownership:
			// returning it, storing it into a struct, sending it away.
			// Stop tracking so the holder's contract applies instead.
			if root := rootIdent(e); root != nil {
				if obj := pass.Info.ObjectOf(root); obj != nil && f.get(obj)&tHeld != 0 {
					f.set(obj, 0)
					delete(acquire, obj)
				}
			}
		},
		onExit: func(f *funcFlow, pos token.Pos) {
			f.each(func(obj types.Object, t taint) {
				if t&tHeld != 0 && t&tCovered == 0 {
					if s, ok := acquire[obj]; ok && s.depth == 0 {
						f.Reportf(s.pos,
							"store read lease %s has a path to function exit without Release; use defer %s.Release() or release on every branch",
							objName(obj), objName(obj))
					}
				}
			})
		},
	}
	runFlow(pass, fn, hooks, nil)
}

func objName(obj types.Object) string {
	if obj == nil || obj.Name() == "" {
		return "lease"
	}
	return obj.Name()
}

// blockingCallKind classifies calls that can block the goroutine for
// an unbounded time while the lease pins the store's read lock.
func blockingCallKind(pass *Pass, call *ast.CallExpr, fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "a network round trip (net/http " + name + ")"
		}
	case "net":
		if strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") {
			return "a network call (net." + name + ")"
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		switch {
		case name == "Wait" && (isMethodOn(fn, "sync", "WaitGroup") || isMethodOn(fn, "sync", "Cond")):
			return "a sync wait (" + recvTypeName(fn) + ".Wait)"
		case (name == "Lock" || name == "RLock") &&
			(isMethodOn(fn, "sync", "Mutex") || isMethodOn(fn, "sync", "RWMutex")):
			return "another lock acquisition (" + recvTypeName(fn) + "." + name + ")"
		}
	case storePkgPath:
		if isMethodOn(fn, storePkgPath, "Store") && storeLockingMethods[name] {
			return "the store lock method Store." + name
		}
		// The bulk apply takes every shard's write lock batch by batch.
		// A goroutine holding a read lease across it deadlocks against
		// itself: the lease pins the shard read locks the apply wants.
		// (The matview maintenance goroutine is the canonical caller
		// that must stay lease-free here.)
		if isMethodOn(fn, storePkgPath, "BulkLoader") && name == "AddBatch" {
			return "the bulk-load apply BulkLoader.AddBatch"
		}
	}
	return ""
}

// storeLockingMethods lists the exported *store.Store methods that
// acquire shard locks (the shard-lease contract: a lease holds every
// shard's read lock). Calling one while a read lease is held re-enters
// an RWMutex the lease already holds: with a writer queued in between,
// that deadlocks. Lease methods (MatchIDs/CountIDs/TermOf on
// *store.Lease) are the sanctioned under-lease API and are
// deliberately absent, as are the lock-free accessors (Len, Epoch,
// NumShards, ShardOf read only atomics or immutable routing state).
var storeLockingMethods = map[string]bool{
	"Add": true, "AddTriple": true, "MustAdd": true, "Remove": true,
	"Has": true, "Match": true, "MatchSlice": true, "Count": true,
	"Graphs": true, "Objects": true, "FirstObject": true, "Subjects": true,
	"TextSearch": true, "TextPrefixSearch": true, "GeoWithin": true,
	"GeometryOf": true, "StatsSnapshot": true, "ShardStats": true,
	"DumpNQuads": true, "LoadNQuads": true, "SaveFile": true,
	"LoadFile": true, "MatchIDs": true, "CountIDs": true, "ReadLease": true,
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := namedOrPtr(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}
