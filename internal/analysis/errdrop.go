package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error returns in the binaries (cmd/...) and
// runnable examples (examples/...): a call used as a bare statement
// whose results include an error, or an error result assigned to the
// blank identifier. CLI binaries must handle errors and exit
// non-zero, not swallow them.
//
// Deliberately excluded: deferred calls (the defer f.Close() idiom),
// and the fmt print family writing to stdout — a CLI that cannot
// print has no channel left to report on.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error returns in cmd/ and examples/",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	if !strings.HasPrefix(pass.Path, "lodify/cmd/") && !strings.HasPrefix(pass.Path, "lodify/examples/") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// defer f.Close() / fire-and-forget goroutines are out
				// of scope; do not descend into the call itself (its
				// own arguments cannot be statements).
				return false
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok || errdropExcluded(pass, call) {
					return true
				}
				if i := errResultIndex(pass, call); i >= 0 {
					pass.Reportf(call.Pos(), "error result of %s discarded; handle it and exit non-zero on failure", calleeLabel(pass, call))
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			}
			return true
		})
	}
}

// checkBlankErrAssign flags `x, _ := f()` where the blanked position
// is an error.
func checkBlankErrAssign(pass *Pass, n *ast.AssignStmt) {
	// Multi-value form: one call on the right, n results mapped to
	// the left-hand sides.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok || errdropExcluded(pass, call) {
			return
		}
		tv, ok := pass.Info.Types[call]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(n.Lhs) {
			return
		}
		for i, lhs := range n.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s assigned to _; handle it and exit non-zero on failure", calleeLabel(pass, call))
			}
		}
		return
	}
	// 1:1 form: `_ = f()` with f returning exactly an error.
	if len(n.Rhs) == len(n.Lhs) {
		for i, lhs := range n.Lhs {
			if !isBlank(lhs) {
				continue
			}
			call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
			if !ok || errdropExcluded(pass, call) {
				continue
			}
			if tv, ok := pass.Info.Types[call]; ok && isErrorType(tv.Type) {
				pass.Reportf(lhs.Pos(), "error result of %s assigned to _; handle it and exit non-zero on failure", calleeLabel(pass, call))
			}
		}
	}
}

// errResultIndex returns the index of an error in the call's result
// tuple (or 0 for a single error result), -1 if none.
func errResultIndex(pass *Pass, call *ast.CallExpr) int {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errdropExcluded lists callees whose error returns a CLI may
// legitimately ignore: the fmt print family (stdout is the CLI's only
// reporting channel) and the never-failing in-memory writers.
func errdropExcluded(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Println", "Printf":
			return true
		case "Fprint", "Fprintln", "Fprintf":
			// Only when writing to the process's own std streams.
			if len(call.Args) > 0 {
				if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" &&
						(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
						return true
					}
				}
			}
		}
	case "strings", "bytes":
		// (*strings.Builder) / (*bytes.Buffer) writes never fail.
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return true
		}
	}
	return false
}

func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return "call"
	}
	if fn.Pkg() != nil && fn.Pkg().Path() != pass.Path {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return types.TypeString(recv.Type(), types.RelativeTo(pass.Pkg)) + "." + fn.Name()
		}
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
