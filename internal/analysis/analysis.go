// Package analysis implements lodlint, the project-specific static
// analysis suite. The LODify pipeline has two places where silent
// bugs creep in at scale: IRIs minted from relational keys by ad-hoc
// string assembly (§2.1's D2R step) and data races in the concurrent
// SPARQL/resolver fan-out paths. The analyzers here encode the
// project rules that keep both honest:
//
//   - rawiri: IRI/URI construction by string concatenation or
//     fmt.Sprintf outside internal/rdf — all minting must go through
//     the rdf term constructors so invalid IRIs cannot enter the store.
//   - locksafe: sync.Mutex/RWMutex values copied by value, and
//     methods that call other locking methods of the same receiver
//     while holding the lock (the Store/Broker re-entrancy hazard).
//   - ctxflow: exported functions in the remote-endpoint packages
//     (resolver, sparql, federation, web) that model LOD endpoint
//     calls but take no context.Context, blocking timeout and
//     cancellation work.
//   - errdrop: discarded error returns in cmd/ and examples/ —
//     binaries must exit non-zero on failure.
//
// The PR-3/PR-4 performance work added contracts that syntactic
// matching cannot see, checked by three dataflow analyzers built on
// the engine in dataflow.go:
//
//   - bufescape: chunk-batch quads/terms escaping a
//     rdf.ParseNQuadsChunked callback without Clone (the batch aliases
//     a recycled parse buffer).
//   - leasehold: store read leases with a path to function exit
//     without Release, or held across a blocking call.
//   - localid: query-local (high-bit) SPARQL ids flowing into store ID
//     lookups.
//
// The v3 interprocedural layer (callgraph.go, summary.go) computes
// bottom-up per-function effect summaries over the loaded package
// DAG, so the three dataflow analyzers see through helper calls —
// a Clone or Release inside a callee counts — and two more analyzers
// ride on the same machinery:
//
//   - lockorder: the static lock-acquisition graph across
//     sync.Mutex/RWMutex fields — cycles with witness paths, plus the
//     declared //lodlint:lockorder order checked at every
//     nested-acquire site.
//   - goleak: goroutines spawned without a ctx/done-channel/WaitGroup
//     completion path.
//
// The v4 generation machine-checks the concurrency contracts the
// sharded store (PR 8) and incremental matviews (PR 9) introduced:
//
//   - atomicmix: struct fields accessed via sync/atomic at one site
//     and by plain load/store at another with no lock held, seeing
//     through accessor helpers via the MixPlain summary field.
//   - hookreent: callbacks registered on Store.OnCommit must not
//     reach a store mutation or acquire locks on the commit path;
//     `//lodlint:lockorder nolock <reason>` marks reviewed exceptions
//     (lock findings only — mutations are never exempt).
//   - statshold: pstats counters and HLL sketches mutated only while
//     the owning shard's write lock is held, with helpers like
//     (*shard).statAdd summarized via MutatesStats.
//
// The package is stdlib-only (go/ast, go/parser, go/types); the
// driver in cmd/lodlint loads every package of the module and runs
// all analyzers, exiting non-zero on findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check. Run inspects the package held by the
// pass and reports findings through pass.Reportf.
type Analyzer struct {
	// Name is the short rule identifier (e.g. "rawiri").
	Name string
	// Doc is the one-line rule description shown by lodlint -list.
	Doc string
	// Run executes the check.
	Run func(*Pass)
}

// Pass carries one analyzed package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package import path ("lodify/internal/store").
	Path string
	Fset *token.FileSet
	// Files holds the parsed syntax of every package file.
	Files []*ast.File
	// Pkg and Info hold the type-checked package; Info lookups may be
	// incomplete when the package had type errors.
	Pkg  *types.Package
	Info *types.Info
	// Index holds the interprocedural function summaries shared by all
	// passes of a run; nil means summaries are unavailable
	// (-interproc=off) and the dataflow analyzers fall back to
	// treating calls as opaque.
	Index *SummaryIndex

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Version identifies the analyzer suite generation. It is embedded in
// JSON/SARIF output and folded into the summary cache key so caches
// from an older suite cannot mask findings from a newer one.
const Version = "4.0.0"

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{RawIRI, LockSafe, CtxFlow, ErrDrop, BufEscape, LeaseHold, LocalID, LockOrder, GoLeak, SpanEnd, AtomicMix, HookReent, StatsHold}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunConfig controls a lint run.
type RunConfig struct {
	// Interproc enables the interprocedural summary index; off, the
	// dataflow analyzers degrade to v2 (calls opaque) and lockorder/
	// goleak to per-package evidence.
	Interproc bool
	// CacheDir is the on-disk summary cache directory; "" disables
	// caching (summaries recomputed every run).
	CacheDir string
}

// Run applies each analyzer to each package with interprocedural
// summaries enabled and no on-disk cache (the fixture-test and
// library default).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWith(RunConfig{Interproc: true}, pkgs, analyzers)
}

// RunWith is Run with explicit configuration — packages analyzed in
// parallel, each package's analyzers in sequence — returning the
// findings in deterministic order. The summary index is built
// up-front (bottom-up over the package DAG) and shared read-only by
// every pass, so the fan-out needs no locking beyond the final merge.
func RunWith(cfg RunConfig, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var ix *SummaryIndex
	if cfg.Interproc {
		salt := Version
		for _, a := range analyzers {
			salt += ":" + a.Name
		}
		ix = BuildSummaries(pkgs, cfg.CacheDir, salt)
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			for _, a := range analyzers {
				pass := &Pass{
					Analyzer: a,
					Path:     pkg.Path,
					Fset:     pkg.Fset,
					Files:    pkg.Files,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					Index:    ix,
					diags:    &perPkg[i],
				}
				a.Run(pass)
			}
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, ds := range perPkg {
		diags = append(diags, ds...)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, analyzer and
// finally message — a total order, so the parallel per-package fan-out
// cannot leak scheduling nondeterminism into any output format.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Column != diags[j].Column {
			return diags[i].Column < diags[j].Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// ---- shared type helpers ----

// isNamedType reports whether t is the named type pkgPath.name
// (pointers are not dereferenced).
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeFunc resolves the *types.Func a call expression invokes, or
// nil for calls through function values, type conversions and
// builtins. Explicit generic instantiations (Foo[T](x),
// recv.Meth[T1, T2](x)) are unwrapped to the underlying function.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeIsPkgFunc reports whether the call invokes the package-level
// function (or method) pkgPath.name.
func calleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// calleePkgPath returns the defining package path of the called
// function, or "".
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
