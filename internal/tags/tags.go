// Package tags implements the triple-tag (machine-tag) system the
// platform used before its semantic migration (§1.1): tags of the
// form namespace:predicate=value carrying lightweight semantics, the
// context namespaces the paper introduced (address, people) alongside
// the geo/cell/place namespaces common on social sites, plain keyword
// tags, and the tag index behind tag-based virtual albums ("filter
// user-generated pictures by each triple tag namespace, predicate or
// value"). It is the baseline the semantic stack is evaluated against
// in experiment E7.
package tags

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"lodify/internal/textsim"
)

// TripleTag is a namespace:predicate=value machine tag.
type TripleTag struct {
	Namespace string
	Predicate string
	Value     string
}

// Known context namespaces (§1.1: geo is the Flickr-popular one;
// address and people are the paper's "brand new namespaces"; cell,
// place and poi appear in its examples).
const (
	NSGeo     = "geo"
	NSAddress = "address"
	NSPeople  = "people"
	NSCell    = "cell"
	NSPlace   = "place"
	NSPOI     = "poi"
)

// String renders the canonical machine-tag form with the value
// URL-encoded (e.g. people:fn=Walter+Goix).
func (t TripleTag) String() string {
	return t.Namespace + ":" + t.Predicate + "=" + url.QueryEscape(t.Value)
}

// Display renders the friendly format the platform GUI shows for
// context tags (§1.1: "context tags are displayed in a friendly
// format").
func (t TripleTag) Display() string {
	return t.Predicate + ": " + t.Value
}

// Parse parses a machine tag. It returns an error when the input is
// not of the namespace:predicate=value shape.
func Parse(s string) (TripleTag, error) {
	colon := strings.Index(s, ":")
	if colon <= 0 {
		return TripleTag{}, fmt.Errorf("tags: %q has no namespace", s)
	}
	eq := strings.Index(s[colon:], "=")
	if eq <= 1 {
		return TripleTag{}, fmt.Errorf("tags: %q has no predicate=value part", s)
	}
	eq += colon
	ns, pred := s[:colon], s[colon+1:eq]
	if pred == "" {
		return TripleTag{}, fmt.Errorf("tags: %q has empty predicate", s)
	}
	val, err := url.QueryUnescape(s[eq+1:])
	if err != nil {
		return TripleTag{}, fmt.Errorf("tags: %q has malformed value: %v", s, err)
	}
	if val == "" {
		return TripleTag{}, fmt.Errorf("tags: %q has empty value", s)
	}
	return TripleTag{Namespace: ns, Predicate: pred, Value: val}, nil
}

// IsTripleTag reports whether s parses as a machine tag; plain
// keyword tags do not.
func IsTripleTag(s string) bool {
	_, err := Parse(s)
	return err == nil
}

// Split separates a mixed tag list into triple tags and plain keyword
// tags, preserving order.
func Split(raw []string) (triple []TripleTag, plain []string) {
	for _, s := range raw {
		if t, err := Parse(s); err == nil {
			triple = append(triple, t)
		} else if s != "" {
			plain = append(plain, s)
		}
	}
	return triple, plain
}

// Index is the tag index behind the baseline's tag-based navigation:
// content IDs are opaque strings (the platform uses picture IDs).
// The zero value is not usable; call NewIndex.
type Index struct {
	// byTag maps canonical triple-tag string -> content set.
	byTag map[string]map[string]bool
	// byNSPred maps namespace and namespace:predicate -> content set.
	byNSPred map[string]map[string]bool
	// byKeyword maps folded plain keywords -> content set.
	byKeyword map[string]map[string]bool
	// tagsByContent supports removal.
	tagsByContent map[string][]string // canonical strings + kw: keys
}

// NewIndex returns an empty tag index.
func NewIndex() *Index {
	return &Index{
		byTag:         map[string]map[string]bool{},
		byNSPred:      map[string]map[string]bool{},
		byKeyword:     map[string]map[string]bool{},
		tagsByContent: map[string][]string{},
	}
}

func addTo(m map[string]map[string]bool, key, id string) {
	set, ok := m[key]
	if !ok {
		set = map[string]bool{}
		m[key] = set
	}
	set[id] = true
}

func delFrom(m map[string]map[string]bool, key, id string) {
	if set, ok := m[key]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(m, key)
		}
	}
}

// Add indexes a content item under its triple tags and keywords.
func (ix *Index) Add(contentID string, triple []TripleTag, keywords []string) {
	var keys []string
	for _, t := range triple {
		c := t.String()
		addTo(ix.byTag, c, contentID)
		addTo(ix.byNSPred, t.Namespace, contentID)
		addTo(ix.byNSPred, t.Namespace+":"+t.Predicate, contentID)
		keys = append(keys, "t:"+c, "n:"+t.Namespace, "n:"+t.Namespace+":"+t.Predicate)
	}
	for _, kw := range keywords {
		f := textsim.Fold(kw)
		if f == "" {
			continue
		}
		addTo(ix.byKeyword, f, contentID)
		keys = append(keys, "k:"+f)
	}
	ix.tagsByContent[contentID] = append(ix.tagsByContent[contentID], keys...)
}

// Remove drops every index entry for a content item.
func (ix *Index) Remove(contentID string) {
	for _, key := range ix.tagsByContent[contentID] {
		switch {
		case strings.HasPrefix(key, "t:"):
			delFrom(ix.byTag, key[2:], contentID)
		case strings.HasPrefix(key, "n:"):
			delFrom(ix.byNSPred, key[2:], contentID)
		case strings.HasPrefix(key, "k:"):
			delFrom(ix.byKeyword, key[2:], contentID)
		}
	}
	delete(ix.tagsByContent, contentID)
}

// ByTag returns the content carrying the exact triple tag, sorted —
// e.g. people:fn=Walter+Goix or cell:cgi=460-0-9522-3661 (§1.1).
func (ix *Index) ByTag(t TripleTag) []string {
	return sortedKeys(ix.byTag[t.String()])
}

// ByNamespace returns content carrying any tag in the namespace.
func (ix *Index) ByNamespace(ns string) []string {
	return sortedKeys(ix.byNSPred[ns])
}

// ByPredicate returns content carrying any namespace:predicate tag.
func (ix *Index) ByPredicate(ns, pred string) []string {
	return sortedKeys(ix.byNSPred[ns+":"+pred])
}

// ByKeywords returns content matching every plain keyword (AND), the
// baseline's keyword search.
func (ix *Index) ByKeywords(kws ...string) []string {
	var cur map[string]bool
	for _, kw := range kws {
		set := ix.byKeyword[textsim.Fold(kw)]
		if len(set) == 0 {
			return nil
		}
		if cur == nil {
			cur = map[string]bool{}
			for id := range set {
				cur[id] = true
			}
			continue
		}
		for id := range cur {
			if !set[id] {
				delete(cur, id)
			}
		}
	}
	return sortedKeys(cur)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Keywords returns the distinct indexed keywords, sorted (folksonomy
// inspection).
func (ix *Index) Keywords() []string {
	out := make([]string, 0, len(ix.byKeyword))
	for k := range ix.byKeyword {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
