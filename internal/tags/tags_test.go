package tags

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	tests := []struct {
		in   string
		want TripleTag
	}{
		{"people:fn=Walter+Goix", TripleTag{"people", "fn", "Walter Goix"}},
		{"cell:cgi=460-0-9522-3661", TripleTag{"cell", "cgi", "460-0-9522-3661"}},
		{"place:is=crowded", TripleTag{"place", "is", "crowded"}},
		{"poi:recs_id=72", TripleTag{"poi", "recs_id", "72"}},
		{"geo:lat=45.0690", TripleTag{"geo", "lat", "45.0690"}},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "plain", "ns:", "ns:pred", "ns:=v", ":pred=v", "ns:pred=", "ns:pred=%zz"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestIsTripleTag(t *testing.T) {
	if !IsTripleTag("people:fn=Walter+Goix") || IsTripleTag("sunset") {
		t.Fatal("classification broken")
	}
}

// Property: Parse(t.String()) round-trips for arbitrary values.
func TestQuickRoundTrip(t *testing.T) {
	f := func(value string) bool {
		if value == "" {
			return true
		}
		orig := TripleTag{Namespace: "people", Predicate: "fn", Value: value}
		got, err := Parse(orig.String())
		return err == nil && got == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitMixedTags(t *testing.T) {
	triple, plain := Split([]string{"sunset", "people:fn=Walter", "torino", "place:is=crowded", ""})
	if len(triple) != 2 || len(plain) != 2 {
		t.Fatalf("triple = %v, plain = %v", triple, plain)
	}
	if plain[0] != "sunset" || plain[1] != "torino" {
		t.Fatalf("plain = %v", plain)
	}
}

func TestDisplayFriendlyFormat(t *testing.T) {
	tag := TripleTag{"address", "city", "Torino"}
	if got := tag.Display(); got != "city: Torino" {
		t.Fatalf("Display = %q", got)
	}
}

func buildIndex() *Index {
	ix := NewIndex()
	ix.Add("pic1",
		[]TripleTag{{"people", "fn", "Walter Goix"}, {"cell", "cgi", "460-0-9522-3661"}, {"address", "city", "Torino"}},
		[]string{"sunset", "mole"})
	ix.Add("pic2",
		[]TripleTag{{"people", "fn", "Walter Goix"}, {"place", "is", "crowded"}},
		[]string{"sunset", "crowd"})
	ix.Add("pic3",
		[]TripleTag{{"people", "fn", "Oscar R"}, {"address", "city", "Roma"}},
		[]string{"colosseum"})
	return ix
}

func TestIndexByTag(t *testing.T) {
	ix := buildIndex()
	got := ix.ByTag(TripleTag{"people", "fn", "Walter Goix"})
	if !reflect.DeepEqual(got, []string{"pic1", "pic2"}) {
		t.Fatalf("ByTag = %v", got)
	}
	if got := ix.ByTag(TripleTag{"cell", "cgi", "460-0-9522-3661"}); !reflect.DeepEqual(got, []string{"pic1"}) {
		t.Fatalf("cell = %v", got)
	}
	if got := ix.ByTag(TripleTag{"place", "is", "quiet"}); len(got) != 0 {
		t.Fatalf("missing tag = %v", got)
	}
}

func TestIndexByNamespaceAndPredicate(t *testing.T) {
	ix := buildIndex()
	if got := ix.ByNamespace("people"); len(got) != 3 {
		t.Fatalf("ByNamespace = %v", got)
	}
	if got := ix.ByPredicate("address", "city"); len(got) != 2 {
		t.Fatalf("ByPredicate = %v", got)
	}
	if got := ix.ByNamespace("nope"); len(got) != 0 {
		t.Fatalf("unknown ns = %v", got)
	}
}

func TestIndexKeywordSearchANDSemantics(t *testing.T) {
	ix := buildIndex()
	if got := ix.ByKeywords("sunset"); len(got) != 2 {
		t.Fatalf("sunset = %v", got)
	}
	if got := ix.ByKeywords("sunset", "mole"); !reflect.DeepEqual(got, []string{"pic1"}) {
		t.Fatalf("AND = %v", got)
	}
	if got := ix.ByKeywords("sunset", "colosseum"); len(got) != 0 {
		t.Fatalf("disjoint AND = %v", got)
	}
	// Folded matching.
	if got := ix.ByKeywords("SUNSET"); len(got) != 2 {
		t.Fatalf("folded = %v", got)
	}
}

func TestIndexRemove(t *testing.T) {
	ix := buildIndex()
	ix.Remove("pic1")
	if got := ix.ByTag(TripleTag{"people", "fn", "Walter Goix"}); !reflect.DeepEqual(got, []string{"pic2"}) {
		t.Fatalf("after remove = %v", got)
	}
	if got := ix.ByKeywords("mole"); len(got) != 0 {
		t.Fatalf("keyword not removed: %v", got)
	}
	if got := ix.ByTag(TripleTag{"cell", "cgi", "460-0-9522-3661"}); len(got) != 0 {
		t.Fatalf("cell not removed: %v", got)
	}
	// Removing again is a no-op.
	ix.Remove("pic1")
}

func TestKeywordsVocabulary(t *testing.T) {
	ix := buildIndex()
	kws := ix.Keywords()
	if len(kws) != 4 {
		t.Fatalf("keywords = %v", kws)
	}
}
