// Tourism: the eTourism scenario that motivates the paper — a tourist
// walks through Turin taking photos; nearby friends are detected, a
// POI is explicitly attached, and at the end the "About" mashup shows
// the city abstract, nearby restaurants and attractions for one of
// the photos (§4.1, Fig. 4), exactly as the mobile interface would.
package main

import (
	"fmt"
	"log"
	"time"

	"lodify/internal/annotate"
	"lodify/internal/ctxmgr"
	"lodify/internal/geo"
	"lodify/internal/lod"
	"lodify/internal/resolver"
	"lodify/internal/sparql"
	"lodify/internal/ugc"
	"lodify/internal/web"
)

func main() {
	world := lod.Generate(lod.DefaultConfig())
	ctx := ctxmgr.New(world)
	pipe := annotate.NewPipeline(world.Store, resolver.DefaultBroker(world.Store), annotate.DefaultConfig())
	platform := ugc.New(world.Store, ctx, pipe, ugc.Options{})

	if _, err := platform.Register("oscar", "Oscar Rodriguez", ""); err != nil {
		log.Fatal(err)
	}
	if _, err := platform.Register("walter", "Walter Goix", ""); err != nil {
		log.Fatal(err)
	}
	if err := platform.AddFriend("oscar", "walter"); err != nil {
		log.Fatal(err)
	}

	day := time.Date(2011, 9, 17, 10, 0, 0, 0, time.UTC)
	walk := []struct {
		title string
		pt    geo.Point
		tags  []string
	}{
		{"Colazione in Piazza Castello", geo.Point{Lon: 7.6858, Lat: 45.0711}, []string{"colazione"}},
		{"Il Museo Egizio è meraviglioso", geo.Point{Lon: 7.6843, Lat: 45.0684}, []string{"museo"}},
		{"Tramonto sulla Mole Antonelliana", geo.Point{Lon: 7.6934, Lat: 45.0690}, []string{"tramonto", "torino"}},
	}

	// Walter is also in town — the context platform will see him.
	platform.Ctx.UpdatePresence("walter", geo.Point{Lon: 7.6930, Lat: 45.0692}, day.Add(8*time.Hour))

	var lastID int64
	for i, stop := range walk {
		at := day.Add(time.Duration(i*4) * time.Hour)
		// Attach an explicit POI for the last shot (§2.2.1 flow).
		tags := stop.tags
		if i == len(walk)-1 {
			pois := platform.SearchPOIs(stop.pt, "Mole", 1)
			if len(pois) == 1 {
				tags = append(tags, "poi:recs_id="+pois[0].ID)
			}
		}
		c, err := platform.Publish(ugc.Upload{
			User: "oscar", Filename: fmt.Sprintf("walk_%d.jpg", i),
			Title: stop.title, Tags: tags, GPS: &stop.pt, TakenAt: at,
		})
		if err != nil {
			log.Fatal(err)
		}
		lastID = c.ID
		fmt.Printf("uploaded %q\n", stop.title)
		for _, a := range c.AutoAnnotations() {
			fmt.Printf("  linked %q -> %s\n", a.Word, a.Resource.Value())
		}
		for _, p := range c.POIs {
			fmt.Printf("  POI %q -> %s\n", p.POI.Name, p.Resource.Value())
		}
		for _, t := range c.ContextTags {
			fmt.Printf("  ctx %s\n", t)
		}
	}

	// The "About" button on the last photo: the four-arm mashup.
	fmt.Printf("\n-- About this photo (mashup, §4.1) --\n")
	c, _ := platform.Content(lastID)
	engine := sparql.NewEngine(platform.Store)
	res, err := engine.Query(web.AboutMashupQuery(c.IRI.Value(), "it"))
	if err != nil {
		log.Fatal(err)
	}
	for _, sol := range res.Solutions {
		label, ty, desc := val(sol, "lbl"), short(val(sol, "entType")), val(sol, "desc")
		if len(desc) > 60 {
			desc = desc[:57] + "..."
		}
		fmt.Printf("  [%-13s] %-28s %s\n", ty, label, desc)
	}
}

func val(sol sparql.Solution, v string) string {
	if t, ok := sol[v]; ok {
		return t.Value()
	}
	return ""
}

func short(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' || iri[i] == '#' {
			return iri[i+1:]
		}
	}
	return iri
}
