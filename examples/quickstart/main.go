// Quickstart: the minimal end-to-end flow — generate the LOD world,
// wire the platform, upload one geo-tagged photo, watch the automatic
// semantic annotation happen, and retrieve the photo back with a
// SPARQL query instead of keywords.
package main

import (
	"fmt"
	"log"
	"time"

	"lodify/internal/annotate"
	"lodify/internal/ctxmgr"
	"lodify/internal/geo"
	"lodify/internal/lod"
	"lodify/internal/resolver"
	"lodify/internal/sparql"
	"lodify/internal/ugc"
)

func main() {
	// 1. The LOD substrate: synthetic DBpedia + Geonames +
	//    LinkedGeoData, loaded into one quad store.
	world := lod.Generate(lod.DefaultConfig())
	fmt.Printf("LOD world ready: %d triples\n", world.Store.Len())

	// 2. The platform: context manager, resolver broker, annotation
	//    pipeline, UGC service.
	ctx := ctxmgr.New(world)
	pipe := annotate.NewPipeline(world.Store, resolver.DefaultBroker(world.Store), annotate.DefaultConfig())
	platform := ugc.New(world.Store, ctx, pipe, ugc.Options{})

	// 3. A user uploads a photo taken at the Mole Antonelliana.
	if _, err := platform.Register("walter", "Walter Goix", "https://openid.example/walter"); err != nil {
		log.Fatal(err)
	}
	mole := geo.Point{Lon: 7.6934, Lat: 45.0690}
	content, err := platform.Publish(ugc.Upload{
		User:     "walter",
		Filename: "mole_sunset.jpg",
		Title:    "Tramonto sulla Mole Antonelliana",
		Tags:     []string{"torino", "sunset"},
		GPS:      &mole,
		TakenAt:  time.Date(2011, 9, 17, 19, 30, 0, 0, time.UTC),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. What the pipeline did automatically.
	fmt.Printf("\npublished %s\n", content.IRI)
	fmt.Printf("detected language: %s\n", content.Language)
	fmt.Printf("context tags:\n")
	for _, t := range content.ContextTags {
		fmt.Printf("  %s\n", t)
	}
	fmt.Printf("automatic annotations:\n")
	for _, a := range content.Annotations {
		fmt.Printf("  %-22q -> %-9s %s\n", a.Word, a.Decision, a.Resource.Value())
	}

	// 5. Retrieve it semantically: "content near the Mole", no
	//    keyword involved (the first §2.3 query).
	engine := sparql.NewEngine(platform.Store)
	res, err := engine.Query(`
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX sioct: <http://rdfs.org/sioc/types#>
PREFIX comm: <http://comm.semanticweb.org/core.owl#>
PREFIX geo: <http://www.w3.org/2003/01/geo/wgs84_pos#>
SELECT DISTINCT ?link WHERE {
  ?monument rdfs:label "Mole Antonelliana"@it .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
  FILTER(bif:st_intersects(?location, ?sourceGEO, 0.3)) .
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSPARQL retrieval near the Mole:\n")
	for _, link := range res.Bindings("link") {
		fmt.Printf("  %s\n", link.Value())
	}
}
