// Federation: the §6 future-work architecture running — two home
// nodes (alice.example and bob.example) on an in-process network.
// Bob discovers Alice via WebFinger, reads her FOAF profile,
// subscribes to her feed through her PubSubHubbub hub, receives a
// near-instant push when she publishes, replies via Salmon and embeds
// the photo via OEmbed.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"lodify/internal/annotate"
	"lodify/internal/ctxmgr"
	"lodify/internal/federation"
	"lodify/internal/geo"
	"lodify/internal/lod"
	"lodify/internal/resolver"
	"lodify/internal/ugc"
)

func newPlatform() *ugc.Platform {
	world := lod.Generate(lod.DefaultConfig())
	ctx := ctxmgr.New(world)
	pipe := annotate.NewPipeline(world.Store, resolver.DefaultBroker(world.Store), annotate.DefaultConfig())
	return ugc.New(world.Store, ctx, pipe, ugc.Options{})
}

// bobSink is bob's push callback endpoint.
type bobSink struct{ received chan string }

func (s *bobSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet { // PuSH verification
		io.WriteString(w, r.URL.Query().Get("hub.challenge"))
		return
	}
	body, _ := io.ReadAll(r.Body)
	s.received <- string(body)
	w.WriteHeader(http.StatusOK)
}

func main() {
	net := federation.NewNetwork()

	alicePlatform := newPlatform()
	alicePlatform.Register("alice", "Alice Antonelli", "")
	alice := federation.NewNode("alice.example", alicePlatform, net)

	bobPlatform := newPlatform()
	bobPlatform.Register("bob", "Bob Bianchi", "")
	federation.NewNode("bob.example", bobPlatform, net)

	sink := &bobSink{received: make(chan string, 8)}
	net.Register("bob-callbacks.example", sink)
	client := net.Client()

	// 1. WebFinger discovery (§6.2: identity across networks).
	links, err := federation.Finger(client, "alice@alice.example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob discovered alice via WebFinger:")
	for rel, href := range links {
		fmt.Printf("  %-50s %s\n", rel, href)
	}

	// 2. FOAF profile sharing.
	resp, err := client.Get(links["describedby"])
	if err != nil {
		log.Fatal(err)
	}
	foaf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\nalice's FOAF profile:\n%s\n", foaf)

	// 3. Bob subscribes to alice's feed via her hub.
	if err := federation.SubscribeRemote(client, links["hub"], alice.TopicURL(),
		"http://bob-callbacks.example/push"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob subscribed to alice's feed (challenge verified)")

	// 4. Alice publishes; bob gets a near-instant push.
	mole := geo.Point{Lon: 7.6934, Lat: 45.0690}
	c, err := alice.PublishContent(ugc.Upload{
		User: "alice", Filename: "torino.jpg",
		Title: "Una giornata a Torino", GPS: &mole,
		TakenAt: time.Date(2011, 9, 17, 12, 0, 0, 0, time.UTC),
	})
	if err != nil {
		log.Fatal(err)
	}
	payload := <-sink.received
	var act federation.Activity
	json.Unmarshal([]byte(payload), &act)
	fmt.Printf("\nbob received push: %s %s %q\n", act.Actor, act.Verb, act.Title)

	// 5. Bob replies with a Salmon.
	if err := federation.SendSalmon(client, links["salmon"],
		"acct:bob@bob.example", "Bellissima!", c.ID); err != nil {
		log.Fatal(err)
	}
	for _, cm := range alice.Comments(c.ID) {
		fmt.Printf("alice's photo got a comment from %s: %q\n", cm.Author, cm.Content)
	}

	// 6. Bob embeds the photo via OEmbed.
	resp, err = client.Get("http://alice.example/oembed?url=" + c.MediaURL)
	if err != nil {
		log.Fatal(err)
	}
	var oembed map[string]any
	json.NewDecoder(resp.Body).Decode(&oembed)
	resp.Body.Close()
	fmt.Printf("oembed: type=%v title=%q provider=%v\n",
		oembed["type"], oembed["title"], oembed["provider_name"])

	// 7. Alice's ActivityStreams timeline.
	resp, err = client.Get(links["http://schemas.google.com/g/2010#updates-from"])
	if err != nil {
		log.Fatal(err)
	}
	timeline, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\nalice's activity timeline:\n%s\n", timeline)
}
