// Federation: the §6 future-work architecture running — two home
// nodes (alice.example and bob.example) on an in-process network.
// Bob discovers Alice via WebFinger, reads her FOAF profile,
// subscribes to her feed through her PubSubHubbub hub, receives a
// near-instant push when she publishes, replies via Salmon and embeds
// the photo via OEmbed.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	neturl "net/url"
	"time"

	"lodify/internal/annotate"
	"lodify/internal/ctxmgr"
	"lodify/internal/federation"
	"lodify/internal/geo"
	"lodify/internal/lod"
	"lodify/internal/resolver"
	"lodify/internal/ugc"
)

func newPlatform() *ugc.Platform {
	world := lod.Generate(lod.DefaultConfig())
	ctx := ctxmgr.New(world)
	pipe := annotate.NewPipeline(world.Store, resolver.DefaultBroker(world.Store), annotate.DefaultConfig())
	return ugc.New(world.Store, ctx, pipe, ugc.Options{})
}

// bobSink is bob's push callback endpoint.
type bobSink struct{ received chan string }

func (s *bobSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet { // PuSH verification
		if _, err := io.WriteString(w, r.URL.Query().Get("hub.challenge")); err != nil {
			log.Printf("push verification reply: %v", err)
		}
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.received <- string(body)
	w.WriteHeader(http.StatusOK)
}

// get fetches a URL over the fabric; any failure ends the demo with a
// non-zero exit.
func get(client *http.Client, url string) []byte {
	resp, err := client.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return body
}

func main() {
	ctx := context.Background()
	net := federation.NewNetwork()

	alicePlatform := newPlatform()
	if _, err := alicePlatform.Register("alice", "Alice Antonelli", ""); err != nil {
		log.Fatal(err)
	}
	alice := federation.NewNode("alice.example", alicePlatform, net)

	bobPlatform := newPlatform()
	if _, err := bobPlatform.Register("bob", "Bob Bianchi", ""); err != nil {
		log.Fatal(err)
	}
	federation.NewNode("bob.example", bobPlatform, net)

	sink := &bobSink{received: make(chan string, 8)}
	net.Register("bob-callbacks.example", sink)
	client := net.Client()

	// 1. WebFinger discovery (§6.2: identity across networks).
	links, err := federation.Finger(ctx, client, "alice@alice.example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob discovered alice via WebFinger:")
	for rel, href := range links {
		fmt.Printf("  %-50s %s\n", rel, href)
	}

	// 2. FOAF profile sharing.
	foaf := get(client, links["describedby"])
	fmt.Printf("\nalice's FOAF profile:\n%s\n", foaf)

	// 3. Bob subscribes to alice's feed via her hub.
	if err := federation.SubscribeRemote(ctx, client, links["hub"], alice.TopicURL(),
		"http://bob-callbacks.example/push"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob subscribed to alice's feed (challenge verified)")

	// 4. Alice publishes; bob gets a near-instant push.
	mole := geo.Point{Lon: 7.6934, Lat: 45.0690}
	c, err := alice.PublishContent(ctx, ugc.Upload{
		User: "alice", Filename: "torino.jpg",
		Title: "Una giornata a Torino", GPS: &mole,
		TakenAt: time.Date(2011, 9, 17, 12, 0, 0, 0, time.UTC),
	})
	if err != nil {
		log.Fatal(err)
	}
	payload := <-sink.received
	var act federation.Activity
	if err := json.Unmarshal([]byte(payload), &act); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbob received push: %s %s %q\n", act.Actor, act.Verb, act.Title)

	// 5. Bob replies with a Salmon.
	if err := federation.SendSalmon(ctx, client, links["salmon"],
		"acct:bob@bob.example", "Bellissima!", c.ID); err != nil {
		log.Fatal(err)
	}
	for _, cm := range alice.Comments(c.ID) {
		fmt.Printf("alice's photo got a comment from %s: %q\n", cm.Author, cm.Content)
	}

	// 6. Bob embeds the photo via OEmbed.
	oembedURL := neturl.URL{
		Scheme:   "http",
		Host:     "alice.example",
		Path:     "/oembed",
		RawQuery: "url=" + neturl.QueryEscape(c.MediaURL),
	}
	var oembed map[string]any
	if err := json.Unmarshal(get(client, oembedURL.String()), &oembed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oembed: type=%v title=%q provider=%v\n",
		oembed["type"], oembed["title"], oembed["provider_name"])

	// 7. Alice's ActivityStreams timeline.
	timeline := get(client, links["http://schemas.google.com/g/2010#updates-from"])
	fmt.Printf("\nalice's activity timeline:\n%s\n", timeline)
}
