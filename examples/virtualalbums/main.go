// Virtualalbums: builds a synthetic corpus and evaluates the paper's
// three §2.3 virtual-album queries — geo proximity, social filtering
// and rating order — printing the SPARQL and the resulting albums,
// then compares with the tag-based baseline album (§1.1).
package main

import (
	"fmt"
	"log"

	"lodify/internal/album"
	"lodify/internal/experiments"
	"lodify/internal/tags"
	"lodify/internal/workload"
)

func main() {
	env, err := experiments.NewEnv(workload.Spec{
		Users: 15, Contents: 200, FriendsPerUser: 4, RatedFraction: 0.8, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	user := env.Corpus.Users[0]
	fmt.Printf("corpus: %d contents by %d users; perspective user: %s\n\n",
		len(env.Corpus.Records), len(env.Corpus.Users), user)

	albums := []album.Album{
		album.NearMonument(env.Platform.Store, "Mole Antonelliana", "it", 0.3),
		album.NearMonumentByFriends(env.Platform.Store, "Mole Antonelliana", "it", 0.3, user),
		album.NearMonumentByFriendsRated(env.Platform.Store, "Mole Antonelliana", "it", 0.3, user),
	}
	for i, a := range albums {
		items, err := a.Items()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("§2.3 query %d — %s: %d items\n", i+1, a.Name(), len(items))
		for j, it := range items {
			if j == 5 {
				fmt.Printf("  ... (%d more)\n", len(items)-5)
				break
			}
			fmt.Printf("  %s\n", it.MediaURL)
		}
		fmt.Println()
	}

	// The pre-semantic baseline: a tag-based album filtered by the
	// people:fn triple tag (who appears in the photo context).
	fullName := "User 01"
	tag := tags.TripleTag{Namespace: tags.NSPeople, Predicate: "fn", Value: fullName}
	baseline := &album.TagAlbum{Title: "with " + fullName, Index: env.Platform.TagIndex, Tag: &tag}
	items, err := baseline.Items()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline triple-tag album %q: %d items\n", baseline.Name(), len(items))
	fmt.Println("\n(the semantic albums express conditions — geo proximity to a")
	fmt.Println("monument, friendship, rating order — that no tag filter can)")
}
